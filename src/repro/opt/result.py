"""Solver result types."""

from __future__ import annotations

import enum
from typing import Dict, Optional, Set, Union

from repro.errors import ModelError
from repro.opt.expr import LinExpr, QuadExpr, Var
from repro.perf import PhaseTimings


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # a solution was found but optimality not proven
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"  # time limit hit with no incumbent
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


class Solution:
    """A solver outcome: status, objective, and variable values.

    ``values`` is ``None`` when no feasible assignment was found.
    """

    def __init__(
        self,
        status: SolveStatus,
        objective: Optional[float] = None,
        values: Optional[Dict[Var, float]] = None,
        runtime: float = 0.0,
        solver: str = "",
        gap: Optional[float] = None,
        message: str = "",
    ) -> None:
        self.status = status
        self.objective = objective
        self.values = values
        self.runtime = runtime
        self.solver = solver
        self.gap = gap
        self.message = message
        self.model_name = ""
        #: Wall-clock breakdown by phase (linearize / presolve / solve / ...).
        self.timings = PhaseTimings()
        #: Search-effort counters (nodes / lp_calls / cuts / ...), filled
        #: by the backend that produced this solution.
        self.counters: Dict[str, int] = {}

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    @property
    def has_solution(self) -> bool:
        return self.status.has_solution and self.values is not None

    def value(self, expr: Union[Var, LinExpr, QuadExpr, int, float]) -> float:
        """Evaluate a variable or expression under this solution."""
        if self.values is None:
            raise ModelError(f"no solution available (status={self.status.value})")
        if isinstance(expr, (int, float)):
            return float(expr)
        if isinstance(expr, Var):
            return self.values[expr]
        return expr.value(self.values)

    def int_value(self, expr: Union[Var, LinExpr], tol: float = 1e-5) -> int:
        """Evaluate and round an integral expression, checking tolerance."""
        raw = self.value(expr)
        rounded = round(raw)
        if abs(raw - rounded) > tol:
            raise ModelError(f"expression value {raw} is not integral within {tol}")
        return int(rounded)

    def restrict(self, variables: Set[Var]) -> "Solution":
        """Return a copy whose values only cover ``variables``.

        Used to strip auxiliary linearization variables before handing a
        solution back to the caller.
        """
        values = None
        if self.values is not None:
            values = {v: x for v, x in self.values.items() if v in variables}
        clone = Solution(
            self.status, self.objective, values, self.runtime, self.solver, self.gap, self.message
        )
        clone.model_name = self.model_name
        clone.timings = PhaseTimings(self.timings)
        clone.counters = dict(self.counters)
        return clone

    def clone(self) -> "Solution":
        """An independent copy (used by the model-level re-solve cache)."""
        dup = Solution(
            self.status, self.objective,
            None if self.values is None else dict(self.values),
            self.runtime, self.solver, self.gap, self.message,
        )
        dup.model_name = self.model_name
        dup.timings = PhaseTimings(self.timings)
        dup.counters = dict(self.counters)
        return dup

    def __repr__(self) -> str:
        return (
            f"Solution(status={self.status.value}, objective={self.objective}, "
            f"solver={self.solver!r}, runtime={self.runtime:.3f}s)"
        )

"""Solver backend registry.

Four exact backends are provided:

* ``"highs"`` — scipy's HiGHS MILP interface (default when available);
* ``"branch_bound"`` — our own best-first branch-and-bound over scipy
  LP relaxations;
* ``"parallel_bb"`` — the same search decomposed over N worker
  processes with warm per-worker LPs and deterministic round-based
  coordination (see :mod:`repro.opt.parallel`); the spec form
  ``"parallel_bb:N"`` pins the worker count;
* ``"backtrack"`` — a pure-Python exhaustive CP search for small
  all-integer models (numerics-free oracle).

A meta-backend, ``"portfolio"``, races members on threads and returns
the first conclusive result (see :mod:`repro.opt.solvers.portfolio`).

``"auto"`` resolves to HiGHS when scipy provides it, else branch-and-bound.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import SolverError
from repro.opt.solvers.backtrack import BacktrackBackend
from repro.opt.solvers.base import SolverBackend, merge_counters
from repro.opt.solvers.branch_bound import BranchBoundBackend

#: Built-in backend names (plus the "auto" alias) — not overridable.
BUILTIN_BACKENDS = ("highs", "branch_bound", "parallel_bb", "backtrack",
                    "portfolio")

#: User-registered backend factories (see :func:`register_backend`).
_CUSTOM_BACKENDS: Dict[str, Callable[[], SolverBackend]] = {}


def _highs_available() -> bool:
    try:
        from scipy.optimize import milp  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_backend_name(name: str = "auto") -> str:
    """Resolve ``"auto"`` to the concrete backend name it would pick."""
    if name == "auto":
        return "highs" if _highs_available() else "branch_bound"
    return name


def parse_backend_spec(name: str) -> Tuple[str, Optional[int]]:
    """Split a ``"backend:N"`` worker-count spec into its parts.

    ``"parallel_bb:4"`` → ``("parallel_bb", 4)``; a name without a
    suffix comes back as ``(name, None)``. Raises for a non-integer or
    non-positive worker count.
    """
    base, sep, suffix = name.partition(":")
    if not sep:
        return name, None
    try:
        workers = int(suffix)
    except ValueError:
        raise SolverError(
            f"bad backend spec {name!r}: worker count must be an integer")
    if workers < 1:
        raise SolverError(
            f"bad backend spec {name!r}: worker count must be >= 1")
    return base, workers


def register_backend(name: str, factory: Callable[[], SolverBackend],
                     replace: bool = False) -> None:
    """Register a custom backend factory under ``name``.

    The name then works anywhere a built-in backend name does —
    ``Model.solve(backend=...)``, ``SynthesisOptions.backend``,
    portfolio member lists. Built-in names (and ``"auto"``) cannot be
    shadowed; re-registering an existing custom name requires
    ``replace=True``. The primary consumer is the fault-injection
    harness (:mod:`repro.testing.faultinject`), which wraps a real
    backend in a crash/timeout/corruption layer.
    """
    if name == "auto" or name in BUILTIN_BACKENDS \
            or name.partition(":")[0] in BUILTIN_BACKENDS:
        raise SolverError(f"cannot shadow built-in backend {name!r}")
    if name in _CUSTOM_BACKENDS and not replace:
        raise SolverError(
            f"backend {name!r} already registered (pass replace=True)")
    _CUSTOM_BACKENDS[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a custom backend; unknown names are ignored."""
    _CUSTOM_BACKENDS.pop(name, None)


def get_backend(name: str = "auto") -> SolverBackend:
    """Instantiate a solver backend by name."""
    name = resolve_backend_name(name)
    if name in _CUSTOM_BACKENDS:
        return _CUSTOM_BACKENDS[name]()
    if name == "highs":
        from repro.opt.solvers.highs import HighsBackend

        return HighsBackend()
    if name == "branch_bound":
        return BranchBoundBackend()
    base, workers = parse_backend_spec(name)
    if base == "parallel_bb":
        from repro.opt.solvers.parallel_bb import ParallelBranchBoundBackend

        return ParallelBranchBoundBackend(workers)
    if name == "backtrack":
        return BacktrackBackend()
    if name == "portfolio":
        from repro.opt.solvers.portfolio import PortfolioBackend

        return PortfolioBackend()
    raise SolverError(f"unknown solver backend {name!r}")


def available_backends() -> Dict[str, bool]:
    """Map of backend name to availability on this machine."""
    table = {
        "highs": _highs_available(),
        "branch_bound": True,
        "parallel_bb": True,
        "backtrack": True,
        "portfolio": True,
    }
    table.update({name: True for name in _CUSTOM_BACKENDS})
    return table


__all__ = ["get_backend", "register_backend", "unregister_backend",
           "resolve_backend_name", "parse_backend_spec",
           "available_backends", "BUILTIN_BACKENDS", "SolverBackend",
           "BranchBoundBackend", "BacktrackBackend", "merge_counters"]

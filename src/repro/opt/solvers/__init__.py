"""Solver backend registry.

Three exact backends are provided:

* ``"highs"`` — scipy's HiGHS MILP interface (default when available);
* ``"branch_bound"`` — our own best-first branch-and-bound over scipy
  LP relaxations;
* ``"backtrack"`` — a pure-Python exhaustive CP search for small
  all-integer models (numerics-free oracle).

A fourth meta-backend, ``"portfolio"``, races HiGHS against
branch-and-bound on threads and returns the first conclusive result
(see :mod:`repro.opt.solvers.portfolio`).

``"auto"`` resolves to HiGHS when scipy provides it, else branch-and-bound.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SolverError
from repro.opt.solvers.backtrack import BacktrackBackend
from repro.opt.solvers.base import SolverBackend
from repro.opt.solvers.branch_bound import BranchBoundBackend


def _highs_available() -> bool:
    try:
        from scipy.optimize import milp  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_backend_name(name: str = "auto") -> str:
    """Resolve ``"auto"`` to the concrete backend name it would pick."""
    if name == "auto":
        return "highs" if _highs_available() else "branch_bound"
    return name


def get_backend(name: str = "auto") -> SolverBackend:
    """Instantiate a solver backend by name."""
    name = resolve_backend_name(name)
    if name == "highs":
        from repro.opt.solvers.highs import HighsBackend

        return HighsBackend()
    if name == "branch_bound":
        return BranchBoundBackend()
    if name == "backtrack":
        return BacktrackBackend()
    if name == "portfolio":
        from repro.opt.solvers.portfolio import PortfolioBackend

        return PortfolioBackend()
    raise SolverError(f"unknown solver backend {name!r}")


def available_backends() -> Dict[str, bool]:
    """Map of backend name to availability on this machine."""
    return {
        "highs": _highs_available(),
        "branch_bound": True,
        "backtrack": True,
        "portfolio": True,
    }


__all__ = ["get_backend", "resolve_backend_name", "available_backends",
           "SolverBackend", "BranchBoundBackend", "BacktrackBackend"]

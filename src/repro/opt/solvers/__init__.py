"""Solver backend registry.

Three exact backends are provided:

* ``"highs"`` — scipy's HiGHS MILP interface (default when available);
* ``"branch_bound"`` — our own best-first branch-and-bound over scipy
  LP relaxations;
* ``"backtrack"`` — a pure-Python exhaustive CP search for small
  all-integer models (numerics-free oracle).

A fourth meta-backend, ``"portfolio"``, races HiGHS against
branch-and-bound on threads and returns the first conclusive result
(see :mod:`repro.opt.solvers.portfolio`).

``"auto"`` resolves to HiGHS when scipy provides it, else branch-and-bound.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import SolverError
from repro.opt.solvers.backtrack import BacktrackBackend
from repro.opt.solvers.base import SolverBackend
from repro.opt.solvers.branch_bound import BranchBoundBackend

#: Built-in backend names (plus the "auto" alias) — not overridable.
BUILTIN_BACKENDS = ("highs", "branch_bound", "backtrack", "portfolio")

#: User-registered backend factories (see :func:`register_backend`).
_CUSTOM_BACKENDS: Dict[str, Callable[[], SolverBackend]] = {}


def _highs_available() -> bool:
    try:
        from scipy.optimize import milp  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_backend_name(name: str = "auto") -> str:
    """Resolve ``"auto"`` to the concrete backend name it would pick."""
    if name == "auto":
        return "highs" if _highs_available() else "branch_bound"
    return name


def register_backend(name: str, factory: Callable[[], SolverBackend],
                     replace: bool = False) -> None:
    """Register a custom backend factory under ``name``.

    The name then works anywhere a built-in backend name does —
    ``Model.solve(backend=...)``, ``SynthesisOptions.backend``,
    portfolio member lists. Built-in names (and ``"auto"``) cannot be
    shadowed; re-registering an existing custom name requires
    ``replace=True``. The primary consumer is the fault-injection
    harness (:mod:`repro.testing.faultinject`), which wraps a real
    backend in a crash/timeout/corruption layer.
    """
    if name == "auto" or name in BUILTIN_BACKENDS:
        raise SolverError(f"cannot shadow built-in backend {name!r}")
    if name in _CUSTOM_BACKENDS and not replace:
        raise SolverError(
            f"backend {name!r} already registered (pass replace=True)")
    _CUSTOM_BACKENDS[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a custom backend; unknown names are ignored."""
    _CUSTOM_BACKENDS.pop(name, None)


def get_backend(name: str = "auto") -> SolverBackend:
    """Instantiate a solver backend by name."""
    name = resolve_backend_name(name)
    if name in _CUSTOM_BACKENDS:
        return _CUSTOM_BACKENDS[name]()
    if name == "highs":
        from repro.opt.solvers.highs import HighsBackend

        return HighsBackend()
    if name == "branch_bound":
        return BranchBoundBackend()
    if name == "backtrack":
        return BacktrackBackend()
    if name == "portfolio":
        from repro.opt.solvers.portfolio import PortfolioBackend

        return PortfolioBackend()
    raise SolverError(f"unknown solver backend {name!r}")


def available_backends() -> Dict[str, bool]:
    """Map of backend name to availability on this machine."""
    table = {
        "highs": _highs_available(),
        "branch_bound": True,
        "backtrack": True,
        "portfolio": True,
    }
    table.update({name: True for name in _CUSTOM_BACKENDS})
    return table


__all__ = ["get_backend", "register_backend", "unregister_backend",
           "resolve_backend_name", "available_backends", "BUILTIN_BACKENDS",
           "SolverBackend", "BranchBoundBackend", "BacktrackBackend"]

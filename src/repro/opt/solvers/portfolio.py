"""Portfolio backend: race multiple exact solvers, first winner cancels the rest.

MILP solve times are notoriously instance-dependent: HiGHS's
branch-and-cut dominates on the large synthesis models, but on small
heavily-presolvable instances our own branch-and-bound (whose presolve
fixes whole blocks of ``x`` under the fixed binding policy) can finish
first. The portfolio runs both on threads against the same compiled
model and returns the first *conclusive* result, setting a cancellation
event so the loser stops burning CPU at its next node boundary.

Determinism: both members are exact solvers, so whichever finishes
first the returned **objective value and status are identical** — only
``solver``/``runtime`` metadata and (under alternative optima) the
variable assignment may differ between runs. ``tests/test_determinism.py``
guards this contract.

Threads (not processes) are deliberate: scipy's HiGHS calls release the
GIL, the compiled model is shared read-only, and cancellation is a
cheap :class:`threading.Event` instead of process kill. On a single
core the race still helps whenever one member finishes quickly — the
loser is cancelled after at most one further LP relaxation.

``parallel_bb`` (optionally as a ``"parallel_bb:N"`` worker spec) can
race too: it gets the same cancellation event, which it checks at every
round boundary, and its worker pool is torn down when it loses. Search
effort spent by *every* member that finished is rolled up into the
winner's ``race_*`` counters via
:func:`repro.opt.solvers.base.merge_counters`, so multi-loop solves no
longer under-report their cost.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import SolverError
from repro.obs.trace import current_tracer
from repro.opt.model import Model
from repro.opt.result import Solution, SolveStatus
from repro.opt.solvers.base import SolverBackend

#: Statuses that settle the race — anything else means "keep waiting".
_CONCLUSIVE = (
    SolveStatus.OPTIMAL,
    SolveStatus.INFEASIBLE,
    SolveStatus.UNBOUNDED,
)


class PortfolioBackend(SolverBackend):
    """Race HiGHS against the in-repo branch-and-bound."""

    name = "portfolio"

    def __init__(
        self, members: Optional[Sequence[Union[str, SolverBackend]]] = None
    ) -> None:
        if members is None:
            from repro.opt.solvers import available_backends

            members = ["branch_bound"]
            if available_backends().get("highs"):
                members.insert(0, "highs")
        if not members:
            raise SolverError("portfolio needs at least one member backend")
        #: Backend names or ready-made instances (instances are what the
        #: fault-injection tests race against each other).
        self.members: List[Union[str, SolverBackend]] = list(members)

    @staticmethod
    def _label(member: Union[str, SolverBackend]) -> str:
        return member if isinstance(member, str) else member.name

    def _make_member(self, member: Union[str, SolverBackend],
                     cancel: threading.Event) -> SolverBackend:
        if isinstance(member, SolverBackend):
            return member
        if member == "highs":
            from repro.opt.solvers.highs import HighsBackend

            return HighsBackend()
        if member == "branch_bound":
            from repro.opt.solvers.branch_bound import BranchBoundBackend

            return BranchBoundBackend(cancel_event=cancel)
        if member == "parallel_bb" or member.startswith("parallel_bb:"):
            from repro.opt.solvers import parse_backend_spec
            from repro.opt.solvers.parallel_bb import (
                ParallelBranchBoundBackend,
            )

            _, workers = parse_backend_spec(member)
            return ParallelBranchBoundBackend(workers, cancel_event=cancel)
        from repro.opt.solvers import get_backend

        return get_backend(member)

    def solve(
        self,
        model: Model,
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-9,
        verbose: bool = False,
        warm_start=None,
    ) -> Solution:
        start = time.perf_counter()
        # Compile once up front so both members share the cached arrays
        # instead of racing to build them.
        if model.is_linear():
            model.compiled()

        # When the warm start's objective already matches the root LP
        # bound (strengthened by the clique cuts) within the gap, it is
        # provably optimal: return it without spawning either racer —
        # the ultimate early cancellation.
        tracer = current_tracer()

        if warm_start is not None and model.is_linear() and model.num_vars:
            proven = self._prove_at_root(model, warm_start, mip_gap)
            if proven is not None:
                proven.solver = f"{self.name}(warm)"
                proven.runtime = time.perf_counter() - start
                if tracer is not None:
                    tracer.event("incumbent", solver=self.name,
                                 objective=proven.objective,
                                 source=warm_start.source, nodes=0)
                    tracer.event("race_winner", member="warm",
                                 status=proven.status.value,
                                 reason="warm start proven optimal at root")
                return proven

        if len(self.members) == 1:
            only = self.members[0]
            try:
                sol = self._make_member(only, threading.Event()).solve(
                    model, time_limit, mip_gap, verbose, warm_start=warm_start
                )
            except Exception as exc:
                raise SolverError(
                    f"all 1 portfolio members failed: "
                    f"{self._label(only)}: {type(exc).__name__}: {exc}"
                ) from exc
            sol.solver = f"{self.name}({sol.solver})"
            return sol

        cancel = threading.Event()
        backends = [(self._label(m), self._make_member(m, cancel))
                    for m in self.members]
        # Member threads have their own (empty) span stacks; link their
        # spans to the submitting thread's current span explicitly so
        # the race nests under the pipeline's "solve" phase.
        race_parent = tracer.current_span_id() if tracer is not None else None

        def run(name: str, backend: SolverBackend) -> Tuple[str, Solution]:
            if tracer is None:
                return name, backend.solve(model, time_limit, mip_gap,
                                           verbose, warm_start=warm_start)
            with tracer.span(f"portfolio:{name}", parent=race_parent,
                             member=name):
                return name, backend.solve(model, time_limit, mip_gap,
                                           verbose, warm_start=warm_start)

        winner: Optional[Tuple[str, Solution]] = None
        fallback: Optional[Tuple[str, Solution]] = None
        completed: List[Tuple[str, Solution]] = []
        failures: List[Tuple[str, str]] = []
        pool = ThreadPoolExecutor(max_workers=len(backends),
                                  thread_name_prefix="portfolio")
        try:
            pending = {pool.submit(run, name, backend): name
                       for name, backend in backends}
            while pending:
                done, still = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    member = pending[future]
                    try:
                        name, sol = future.result()
                    except Exception as exc:
                        # Member crashed: let the others decide, but keep
                        # the reason — a silent swallow here is how "the
                        # whole race died" used to look like a timeout.
                        failures.append(
                            (member, f"{type(exc).__name__}: {exc}"))
                        if tracer is not None:
                            tracer.event("member_failed", member=member,
                                         reason=f"{type(exc).__name__}: {exc}")
                        continue
                    completed.append((name, sol))
                    if sol.status in _CONCLUSIVE:
                        if winner is None:
                            winner = (name, sol)
                    elif fallback is None or sol.has_solution:
                        fallback = (name, sol)
                pending = {f: n for f, n in pending.items() if f in still}
                if winner is not None:
                    break
        finally:
            cancel.set()  # losers stop at their next node boundary
            # Do not join the losers: a running scipy.milp call cannot be
            # interrupted, and the branch-and-bound loser exits at its
            # next node check. The worker threads are joined at
            # interpreter exit.
            pool.shutdown(wait=False)

        chosen = winner or fallback
        if chosen is None:
            # Every racer crashed — raise with the roll call instead of
            # returning a silent ERROR solution that upstream code could
            # mistake for an ordinary inconclusive solve.
            reasons = "; ".join(f"{n}: {r}" for n, r in failures) \
                or "no member produced a result"
            raise SolverError(
                f"all {len(self.members)} portfolio members failed: {reasons}"
            )
        name, sol = chosen
        sol.solver = f"{self.name}({name})"
        sol.runtime = time.perf_counter() - start
        # Roll the losers' search effort up into the winner so the race's
        # true cost is visible (summed, not overwritten — see
        # merge_counters for the aggregation rule).
        others = [s.counters for n, s in completed if s is not sol]
        if others:
            from repro.opt.solvers.base import merge_counters

            total = merge_counters(sol.counters, *others)
            for key in ("nodes", "lp_calls", "lp_iterations", "cuts"):
                if total.get(key):
                    sol.counters[f"race_{key}"] = total[key]
        if tracer is not None:
            tracer.event("race_winner", member=name, status=sol.status.value,
                         conclusive=winner is not None)
        for member, reason in failures:
            sol.counters[f"member_failed_{member}"] = 1
        if failures:
            sol.counters["portfolio_member_failures"] = len(failures)
            detail = "; ".join(f"{n}: {r}" for n, r in failures)
            sol.message = (f"{sol.message}; " if sol.message else "") \
                + f"member failures: {detail}"
        return sol

    @staticmethod
    def _prove_at_root(model: Model, warm_start, mip_gap: float
                       ) -> Optional[Solution]:
        """Certify a warm start against the cut-strengthened root LP.

        Returns an OPTIMAL solution built from the warm start when its
        objective meets the root lower bound within ``mip_gap``; None
        otherwise (the race then runs as usual). The LP bound is a
        valid global bound, so this shortcut is exact.
        """
        from repro.opt.cuts import clique_cuts, cut_rows
        from repro.opt.incremental import IncrementalLP

        form = model.compiled()
        x = warm_start.vector(form)
        if x is None:
            return None
        lp = IncrementalLP(form)
        if not lp.check_feasible(x):
            return None
        cliques = clique_cuts(form)
        if cliques:
            lp.add_cuts(*cut_rows(form, cliques))
        root = lp.solve()
        if root.status != 0:
            return None
        val = float(form.c @ x)
        tol = mip_gap * max(1.0, abs(val)) + 1e-9
        if val > root.fun + tol:
            return None
        sol = Solution(
            SolveStatus.OPTIMAL,
            form.report_objective(val),
            form.solution_dict(x),
            message=f"warm start ({warm_start.source}) proven optimal at root",
        )
        sol.counters.update({
            "nodes": 0,
            "lp_calls": lp.lp_calls,
            "lp_iterations": lp.lp_iterations,
            "cuts": lp.cuts_added,
            "incumbent_seeded": 1,
        })
        return sol

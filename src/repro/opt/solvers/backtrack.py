"""A pure-Python backtracking (CP-style) solver for small integer models.

No LP relaxation, no numpy: plain depth-first search over the integer
variable domains with interval-arithmetic pruning on every constraint
and objective-bound pruning against the incumbent. Exhaustive, hence
exact — used as an independent oracle in the test suite to validate the
other backends on small instances, and to solve tiny models (e.g. the
pressure-sharing clique cover of a reduced switch) without numerics.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import ModelError
from repro.obs.trace import current_tracer
from repro.opt.expr import LinExpr, QuadExpr, Sense, Var, VarType
from repro.opt.model import Model
from repro.opt.result import Solution, SolveStatus
from repro.opt.solvers.base import SolverBackend


class BacktrackBackend(SolverBackend):
    """Exhaustive DFS with bound propagation for all-integer models."""

    name = "backtrack"

    def __init__(self, max_domain: int = 1000, use_presolve: bool = True) -> None:
        self.max_domain = max_domain
        self.use_presolve = use_presolve

    def solve(
        self,
        model: Model,
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-9,
        verbose: bool = False,
        warm_start=None,
    ) -> Solution:
        # Clock starts before presolve so time_limit bounds total wall time.
        start = time.perf_counter()
        deadline = start + time_limit if time_limit is not None else None
        if self.use_presolve:
            from repro.opt.incremental import map_back_solution
            from repro.opt.presolve import presolve

            t0 = time.perf_counter()
            reduction = presolve(model)
            presolve_s = time.perf_counter() - t0
            if reduction.proven_infeasible:
                sol = Solution(SolveStatus.INFEASIBLE, solver=self.name,
                               message="presolve proved infeasibility")
                sol.timings.add("presolve", presolve_s)
                return sol
            inner = BacktrackBackend(self.max_domain, use_presolve=False)
            remaining = None
            if deadline is not None:
                remaining = max(deadline - time.perf_counter(), 0.0)
            sol = inner.solve(reduction.model, remaining, mip_gap, verbose,
                              warm_start=warm_start)
            sol = map_back_solution(sol, model, reduction, self.name)
            sol.timings.add("presolve", presolve_s)
            return sol

        for v in model.variables:
            if v.vtype is VarType.CONTINUOUS:
                raise ModelError("backtrack backend supports only integer/binary variables")
            if not (math.isfinite(v.lb) and math.isfinite(v.ub)):
                raise ModelError(f"variable {v.name!r} must have finite bounds")
            if v.ub - v.lb > self.max_domain:
                raise ModelError(f"variable {v.name!r} domain too large for backtracking")

        variables = list(model.variables)
        obj_terms, obj_const = _as_terms(model.objective)
        obj_sign = 1.0 if model.minimize else -1.0
        obj = {v: obj_sign * c for v, c in obj_terms.items()}

        constraints: List[Tuple[Dict[Var, float], float, Sense]] = []
        for c in model.constraints:
            terms, const = _as_terms(c.expr)
            constraints.append((terms, const, c.sense))

        # Order variables: those appearing in many constraints first
        # (fail-first), ties broken by smaller domain.
        occurrence: Dict[Var, int] = {v: 0 for v in variables}
        for terms, _, _ in constraints:
            for v in terms:
                occurrence[v] += 1
        variables.sort(key=lambda v: (-occurrence[v], v.ub - v.lb, v.index))
        order_of = {v: i for i, v in enumerate(variables)}

        # Pre-split each constraint's terms by assignment order so the
        # residual interval of unassigned variables is cheap to compute.
        split_constraints = []
        for terms, const, sense in constraints:
            items = sorted(terms.items(), key=lambda vc: order_of[vc[0]])
            split_constraints.append((items, const, sense))
        obj_items = sorted(obj.items(), key=lambda vc: order_of[vc[0]])

        best_val = math.inf
        best_assignment: Optional[Dict[Var, float]] = None
        assignment: Dict[Var, float] = {}
        timed_out = False
        tracer = current_tracer()

        def user_objective(internal: float) -> float:
            return obj_sign * internal + _objective_constant(model)

        # A validated warm start seeds the incumbent: the DFS then only
        # explores assignments that are strictly better, and returns the
        # seed itself when nothing beats it.
        if warm_start is not None:
            seed = {v: warm_start.values.get(v.name) for v in model.variables}
            if all(val is not None for val in seed.values()) \
                    and not model.check_assignment(seed, tol=1e-6):
                best_assignment = {v: float(val) for v, val in seed.items()}
                best_val = sum(coef * best_assignment[v] for v, coef in obj.items())
                if tracer is not None:
                    tracer.event("incumbent", solver=self.name,
                                 objective=user_objective(best_val),
                                 source=warm_start.source)

        def residual_interval(items, from_pos: int) -> Tuple[float, float]:
            lo = hi = 0.0
            for v, coef in items:
                if order_of[v] < from_pos:
                    continue
                if coef >= 0:
                    lo += coef * v.lb
                    hi += coef * v.ub
                else:
                    lo += coef * v.ub
                    hi += coef * v.lb
            return lo, hi

        def feasible_so_far(pos: int) -> bool:
            """Interval check: can constraints still be satisfied?"""
            for items, const, sense in split_constraints:
                fixed = const
                for v, coef in items:
                    if order_of[v] < pos:
                        fixed += coef * assignment[v]
                lo, hi = residual_interval(items, pos)
                if sense is Sense.LE and fixed + lo > 1e-9:
                    return False
                if sense is Sense.GE and fixed + hi < -1e-9:
                    return False
                if sense is Sense.EQ and (fixed + lo > 1e-9 or fixed + hi < -1e-9):
                    return False
            return True

        def objective_lower_bound(pos: int) -> float:
            total = 0.0
            for v, coef in obj_items:
                if order_of[v] < pos:
                    total += coef * assignment[v]
                elif coef >= 0:
                    total += coef * v.lb
                else:
                    total += coef * v.ub
            return total

        def dfs(pos: int) -> None:
            nonlocal best_val, best_assignment, timed_out
            if timed_out:
                return
            if deadline is not None and time.perf_counter() > deadline:
                timed_out = True
                if tracer is not None:
                    tracer.event("deadline", where=self.name,
                                 budget=time_limit)
                return
            if objective_lower_bound(pos) >= best_val - 1e-9:
                return
            if pos == len(variables):
                val = sum(coef * assignment[v] for v, coef in obj_items)
                if val < best_val:
                    best_val = val
                    best_assignment = dict(assignment)
                    if tracer is not None:
                        tracer.event("incumbent", solver=self.name,
                                     objective=user_objective(val),
                                     source="search")
                return
            var = variables[pos]
            for value in range(int(var.lb), int(var.ub) + 1):
                assignment[var] = float(value)
                if feasible_so_far(pos + 1):
                    dfs(pos + 1)
                if timed_out:
                    break
            assignment.pop(var, None)

        dfs(0)

        if best_assignment is None:
            if timed_out:
                return Solution(SolveStatus.TIME_LIMIT, solver=self.name)
            return Solution(SolveStatus.INFEASIBLE, solver=self.name)
        objective = obj_sign * best_val + _objective_constant(model)
        status = SolveStatus.FEASIBLE if timed_out else SolveStatus.OPTIMAL
        values = {v: best_assignment[v] for v in model.variables}
        return Solution(status, objective, values, solver=self.name)


def _as_terms(expr) -> Tuple[Dict[Var, float], float]:
    if isinstance(expr, LinExpr):
        return expr.terms, expr.constant
    if isinstance(expr, QuadExpr):
        if expr.quad_terms:
            raise ModelError("backtrack backend requires a linearized model")
        return expr.lin_terms, expr.constant
    raise ModelError(f"unexpected expression type {type(expr)!r}")


def _objective_constant(model: Model) -> float:
    obj = model.objective
    if isinstance(obj, (LinExpr, QuadExpr)):
        return obj.constant
    return 0.0

"""Multi-process branch-and-bound backend (``parallel_bb``).

A coordinator/worker split of the serial :mod:`branch_bound` search,
built on :mod:`repro.opt.parallel`:

* the coordinator expands the root serially until the frontier is wide
  enough (phase A), then runs *rounds*: pop a fixed best-first batch of
  subtrees, dispatch them to worker processes (idle workers steal the
  deepest pending subtree), and merge results at a barrier;
* every worker owns a persistent warm
  :class:`~repro.opt.incremental.IncrementalLP` plus the clique-cut
  pool, so per-node cost stays at the warm re-solve price;
* a shared ``multiprocessing.Value`` broadcasts incumbent bounds; the
  default deterministic mode consumes it only at round boundaries (see
  the determinism contract in :mod:`repro.opt.parallel`), while
  ``eager_pruning=True`` lets workers prune against it mid-task;
* pseudo-cost branching statistics are merged by the coordinator each
  round and shipped with the next round's tasks;
* a SIGKILLed worker is detected via pipe EOF, its in-flight subtree is
  re-queued (re-running a task is deterministic) and the seat respawned.

With ``workers=1`` the same round machinery runs fully in-process —
that run is the determinism reference the multi-worker runs are
compared against in ``tests/test_parallel_bb.py``.
"""

from __future__ import annotations

import math
import os
from contextlib import ExitStack
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.deadline import Deadline
from repro.obs.trace import current_correlation, current_tracer
from repro.opt.incremental import map_back_solution
from repro.opt.model import Model
from repro.opt.parallel import (
    DISPATCH_BATCH,
    ROOT_EXPAND_NODES,
    TASK_NODE_BUDGET,
    PseudoCosts,
    SubtreeExplorer,
    WorkerPool,
    fold_hash,
    path_tie,
)
from repro.opt.result import Solution, SolveStatus
from repro.opt.solvers.base import SolverBackend


def default_workers() -> int:
    """Worker-count default: the CPU count, clamped to [1, 4]."""
    return max(1, min(4, os.cpu_count() or 1))


class ParallelBranchBoundBackend(SolverBackend):
    """Deterministic multi-process best-first branch-and-bound."""

    name = "parallel_bb"

    def __init__(self, workers: Optional[int] = None, *,
                 max_nodes: int = 200_000, use_presolve: bool = True,
                 use_cuts: bool = True, tighten: bool = True,
                 eager_pruning: bool = False, seed: int = 0,
                 root_nodes: int = ROOT_EXPAND_NODES,
                 batch: int = DISPATCH_BATCH,
                 task_budget: int = TASK_NODE_BUDGET,
                 mp_context: Optional[str] = None,
                 cancel_event=None, fault_plan=None) -> None:
        self.workers = workers if workers else default_workers()
        if self.workers < 1:
            self.workers = 1
        self.max_nodes = max_nodes
        self.use_presolve = use_presolve
        self.use_cuts = use_cuts
        self.tighten = tighten
        self.eager_pruning = eager_pruning
        self.seed = seed
        self.root_nodes = root_nodes
        self.batch = batch
        self.task_budget = task_budget
        self.mp_context = mp_context
        #: Optional :class:`threading.Event`; when set, the search stops
        #: at the next round boundary (used by the portfolio backend).
        self.cancel_event = cancel_event
        #: Optional :class:`repro.testing.FaultPlan`; a ``"kill"`` draw
        #: SIGKILLs one busy worker that round (chaos testing).
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------
    def solve(
        self,
        model: Model,
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-9,
        verbose: bool = False,
        warm_start=None,
    ) -> Solution:
        deadline = Deadline.start(time_limit)

        if self.use_presolve:
            from repro.opt.presolve import presolve

            reduction = presolve(model)
            presolve_s = deadline.elapsed()
            if reduction.proven_infeasible:
                sol = Solution(SolveStatus.INFEASIBLE, solver=self.name,
                               message="presolve proved infeasibility")
                sol.timings.add("presolve", presolve_s)
                return sol
            inner = ParallelBranchBoundBackend(
                self.workers, max_nodes=self.max_nodes, use_presolve=False,
                use_cuts=self.use_cuts, tighten=self.tighten,
                eager_pruning=self.eager_pruning, seed=self.seed,
                root_nodes=self.root_nodes, batch=self.batch,
                task_budget=self.task_budget, mp_context=self.mp_context,
                cancel_event=self.cancel_event, fault_plan=self.fault_plan)
            sol = inner.solve(reduction.model, deadline.remaining(), mip_gap,
                              verbose, warm_start=warm_start)
            sol = map_back_solution(sol, model, reduction, self.name)
            sol.timings.add("presolve", presolve_s)
            sol.counters["presolve_fixed"] = len(reduction.fixed)
            return sol

        if model.num_vars == 0:
            const = getattr(model.objective, "constant", 0.0)
            return Solution(SolveStatus.OPTIMAL, const, {}, solver=self.name)

        form = model.compiled()
        tracer = current_tracer()
        corr = current_correlation()
        with ExitStack() as stack:
            coord_span = None
            if tracer is not None:
                coord_span = stack.enter_context(tracer.span(
                    "parallel_bb", workers=self.workers, batch=self.batch,
                    task_budget=self.task_budget))
                # Named distinctly from the "bb_workers" *result
                # counter*: synthesize() folds result counters into the
                # registry as Counters, and one name cannot be both.
                tracer.metrics.gauge("bb_pool_workers").set(self.workers)

            explorer = SubtreeExplorer(form, use_cuts=self.use_cuts,
                                       tighten=self.tighten, seed=self.seed)
            if tracer is not None and explorer.cuts:
                tracer.event("cut_round", solver=self.name,
                             cuts=explorer.cuts, kind="clique")

            # Seed the incumbent from the (already validated) warm start.
            incumbent_x: Optional[np.ndarray] = None
            incumbent_val = math.inf
            incumbent_source = ""
            if warm_start is not None:
                x_warm = warm_start.vector(form)
                if x_warm is not None and explorer.lp.check_feasible(x_warm):
                    incumbent_x = x_warm
                    incumbent_val = float(form.c @ x_warm)
                    incumbent_source = warm_start.source
                    if tracer is not None:
                        tracer.event(
                            "incumbent", solver=self.name, nodes=0,
                            objective=form.report_objective(incumbent_val),
                            source=incumbent_source)

            def cutoff() -> float:
                if math.isinf(incumbent_val):
                    return math.inf
                return incumbent_val - mip_gap * max(1.0, abs(incumbent_val))

            def inline_run(task: Dict[str, Any]) -> Dict[str, Any]:
                wire = task["deadline"]
                return explorer.run_task(
                    task["chain"], task["path"],
                    incumbent_val=task["incumbent"],
                    node_budget=task["budget"], pc_arrays=task["pc"],
                    mip_gap=task["mip_gap"],
                    deadline=(Deadline.from_wire(wire)
                              if wire is not None else None))

            pool: Optional[WorkerPool] = None
            if self.workers > 1:
                pool = WorkerPool(
                    form, self.workers, use_cuts=self.use_cuts,
                    tighten=self.tighten, seed=self.seed,
                    eager=self.eager_pruning, inline_fn=inline_run,
                    mp_context=self.mp_context, tracer=tracer)
                if pool.start():
                    stack.callback(pool.stop)
                    if tracer is not None:
                        for wid in range(self.workers):
                            stack.enter_context(tracer.span(
                                f"bb_worker:{wid}", parent=coord_span,
                                worker=wid))
                else:
                    # Pool unusable (e.g. spawn blocked or workers died
                    # warming up): degrade to in-process rounds — and
                    # say so, because the degradation is otherwise
                    # invisible from the merged trace.
                    pool = None
                    if tracer is not None:
                        tracer.event("pool_unavailable", solver=self.name,
                                     workers=self.workers)

            pc = PseudoCosts(form.n)
            pc_store, pc_key = _pseudocost_store(form, self.seed)
            pc_seeded = False
            if pc_store is not None and pc_store.seed_pseudocosts:
                # Tier B opt-in: seeding external branching statistics
                # changes which nodes get explored (a different — often
                # smaller — tree with the same optimum), so it is off
                # unless the store was built with seed_pseudocosts=True.
                arrays = _load_pseudocosts(pc_store, pc_key, form.n)
                if arrays is not None:
                    pc.merge(arrays)
                    pc_seeded = True
            frontier: List[Tuple[float, int, tuple, tuple]] = []
            nodes_total = 0
            lp_calls = 0
            lp_iterations = 0
            tight_prunes = 0
            order_hash = 0
            rounds = 0
            stopped: Optional[str] = None
            cancelled_mid_round = False

            def merge(results: List[Dict[str, Any]], at_nodes: int) -> None:
                nonlocal nodes_total, lp_calls, lp_iterations, tight_prunes
                nonlocal order_hash, incumbent_val, incumbent_x
                results.sort(key=lambda r: r["path"])
                for r in results:
                    nodes_total += r["nodes"]
                    lp_calls += r["lp_calls"]
                    lp_iterations += r["lp_iterations"]
                    tight_prunes += r["tight_prunes"]
                    order_hash = fold_hash(order_hash, r["order"])
                    pc.merge(r["pc"])
                    if r["best_val"] < incumbent_val:
                        incumbent_val = r["best_val"]
                        incumbent_x = np.asarray(r["best_x"])
                        if tracer is not None:
                            tracer.event(
                                "incumbent", solver=self.name,
                                nodes=at_nodes + nodes_total,
                                objective=form.report_objective(incumbent_val),
                                source="search")
                co = cutoff()
                for r in results:
                    for bound, path, chain in r["leftovers"]:
                        if bound < co:
                            heappush(frontier, (bound,
                                                path_tie(self.seed, path),
                                                path, chain))
                if pool is not None and incumbent_val < pool.shared_best.value:
                    pool.shared_best.value = incumbent_val
                    if tracer is not None:
                        tracer.event(
                            "incumbent_broadcast", solver=self.name,
                            objective=form.report_objective(incumbent_val),
                            round=rounds)

            # Phase A: serial root expansion to build the first frontier.
            root = explorer.run_task(
                (), (), incumbent_val=incumbent_val,
                node_budget=self.root_nodes, pc_arrays=pc.snapshot(),
                mip_gap=mip_gap, deadline=deadline)
            root_status = root["root_status"]
            if root_status == 2:
                return Solution(SolveStatus.INFEASIBLE, solver=self.name)
            if root_status == 3:
                return Solution(SolveStatus.UNBOUNDED, solver=self.name)
            if root_status != 0:
                return Solution(SolveStatus.ERROR, solver=self.name,
                                message=f"root LP status {root_status}")
            if tracer is not None:
                tracer.event("bound", solver=self.name,
                             bound=form.report_objective(
                                 root["leftovers"][0][0]
                                 if root["leftovers"] else root["best_val"]),
                             nodes=0)
            merge([root], 0)

            # Keep expanding serially until the frontier is wide enough
            # AND an incumbent exists — rounds prune against the round-
            # start incumbent only, so starting them with a finite
            # cutoff is what keeps the parallel tree close to the
            # serial one. Pure function of the model: deterministic.
            phase_a_cap = max(4 * self.root_nodes, 64)
            while (frontier and not deadline.expired()
                   and not (self.cancel_event is not None
                            and self.cancel_event.is_set())
                   and nodes_total < phase_a_cap
                   and (math.isinf(incumbent_val)
                        or len(frontier) < self.batch)):
                bound, _, path, chain = heappop(frontier)
                if bound >= cutoff():
                    continue
                step = explorer.run_task(
                    chain, path, incumbent_val=incumbent_val,
                    node_budget=self.root_nodes, pc_arrays=pc.snapshot(),
                    mip_gap=mip_gap, deadline=deadline)
                merge([step], nodes_total)

            # Rounds: fixed-size best-first batches, barrier-merged.
            while frontier:
                if deadline.expired():
                    stopped = "deadline"
                    if tracer is not None:
                        tracer.event("deadline", where=self.name,
                                     nodes=nodes_total, budget=time_limit)
                    break
                if self.cancel_event is not None and self.cancel_event.is_set():
                    stopped = "cancelled"
                    break
                if nodes_total > self.max_nodes:
                    stopped = "node_limit"
                    break
                co = cutoff()
                batch: List[Tuple[float, tuple, tuple]] = []
                while frontier and len(batch) < self.batch:
                    bound, _, path, chain = heappop(frontier)
                    if bound >= co:
                        continue
                    batch.append((bound, path, chain))
                if not batch:
                    break
                rounds += 1
                # Deepest-first dispatch order: the seats pull from the
                # front, so an idle worker "steals" the deepest subtree.
                batch.sort(key=lambda t: (-len(t[1]), t[1]))
                wire = deadline.to_wire()
                snap = pc.snapshot()
                # Per-round budget ramp: early rounds stay short so the
                # incumbent (frozen per round for determinism) refreshes
                # quickly; later rounds amortize coordination. A pure
                # function of the round index — never of worker count.
                budget = min(self.task_budget, 8 << (rounds - 1))
                dispatches = [
                    {"chain": chain, "path": path, "incumbent": incumbent_val,
                     "budget": budget, "pc": snap,
                     "mip_gap": mip_gap, "deadline": wire,
                     "home": i % self.workers, "corr": corr}
                    for i, (_, path, chain) in enumerate(batch)]
                if pool is not None:
                    kill_wid = None
                    if (self.fault_plan is not None
                            and self.fault_plan.draw() == "kill"):
                        kill_wid = rounds - 1
                    results = pool.run_round(dispatches, kill_wid=kill_wid,
                                             cancel_event=self.cancel_event)
                    if results is None:
                        stopped = "cancelled"
                        cancelled_mid_round = True
                        break
                else:
                    results = [inline_run(d) for d in dispatches]
                merge(results, nodes_total)
                if tracer is not None:
                    tracer.event("progress", solver=self.name,
                                 nodes=nodes_total, open=len(frontier),
                                 round=rounds, lp_calls=lp_calls,
                                 bound=form.report_objective(
                                     min(b for b, _, _ in batch)))

            if stopped is not None and tracer is not None:
                tracer.event("progress", solver=self.name, stop=stopped,
                             nodes=nodes_total)

            counters = {
                "nodes": nodes_total,
                "lp_calls": lp_calls,
                "lp_iterations": lp_iterations,
                "cuts": explorer.lp.cuts_added,
                "tight_prunes": tight_prunes,
                "node_order_hash": order_hash,
                "bb_rounds": rounds,
                "bb_workers": self.workers if pool is not None else 1,
                "bb_steals": pool.steals if pool is not None else 0,
                "bb_worker_restarts": pool.restarts if pool is not None else 0,
            }
            if incumbent_source:
                counters["incumbent_seeded"] = 1
            if pc_seeded:
                counters["pc_seeded"] = 1
            if pc_store is not None and (pc.dcnt.any() or pc.ucnt.any()):
                # Always write the merged statistics through (first
                # writer wins) — future runs only *use* them when their
                # store opts into seeding.
                _save_pseudocosts(pc_store, pc_key, pc)
            if tracer is not None and pool is not None:
                tracer.metrics.counter("bb_steals").inc(pool.steals)
                if pool.restarts:
                    tracer.metrics.counter("bb_worker_restarts").inc(
                        pool.restarts)

            open_left = bool(frontier) or cancelled_mid_round
            if incumbent_x is None:
                if stopped is not None:
                    sol = Solution(
                        SolveStatus.TIME_LIMIT, solver=self.name,
                        message=f"stopped ({stopped}) after "
                                f"{nodes_total} nodes")
                else:
                    sol = Solution(SolveStatus.INFEASIBLE, solver=self.name)
                sol.counters.update(counters)
                return sol

            int_idx = np.where(form.integrality == 1)[0]
            x = incumbent_x.copy()
            x[int_idx] = np.round(x[int_idx])
            status = (SolveStatus.FEASIBLE
                      if stopped is not None and open_left
                      else SolveStatus.OPTIMAL)
            message = (f"{nodes_total} nodes in {rounds} rounds "
                       f"({counters['bb_workers']} workers)")
            if incumbent_source:
                message += f"; incumbent seeded from {incumbent_source}"
            sol = Solution(
                status,
                form.report_objective(float(form.c @ x)),
                form.solution_dict(x),
                solver=self.name,
                message=message,
            )
            sol.counters.update(counters)
            return sol


def _form_digest(form) -> str:
    """Structural identity of a compiled form (constraints and bounds,
    *not* the objective).

    The objective is deliberately excluded: pseudo-cost statistics are
    a branching heuristic, and the whole point of persisting them is to
    warm up re-weighted solves of the same feasible region (a weight
    sweep). Stats from a different weighting can only reorder the
    search, never change the optimum.
    """
    import hashlib

    h = hashlib.sha256()
    h.update(f"{form.n}:{form.m}".encode())
    for arr in (form.a_rows, form.a_cols, form.a_data, form.rhs,
                form.senses, form.lb, form.ub, form.integrality):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _pseudocost_store(form, seed: int):
    """The ambient store and this form's pseudo-cost key (or None, None)."""
    from repro.store import active_store, artifact_key

    store = active_store()
    if store is None:
        return None, None
    return store, artifact_key("pseudocosts", _form_digest(form), seed)


def _load_pseudocosts(store, key: str, n: int):
    """Stored snapshot arrays for :meth:`PseudoCosts.merge`, or None."""
    payload = store.get(key, "pseudocosts")
    if payload is None:
        return None
    try:
        dsum = np.asarray(payload["dsum"], dtype=float)
        dcnt = np.asarray(payload["dcnt"], dtype=np.int64)
        usum = np.asarray(payload["usum"], dtype=float)
        ucnt = np.asarray(payload["ucnt"], dtype=np.int64)
        if not (len(dsum) == len(dcnt) == len(usum) == len(ucnt) == n):
            raise ValueError("pseudo-cost arrays do not match the form")
        return (dsum, dcnt, usum, ucnt)
    except Exception:
        store.delete(key)
        return None


def _save_pseudocosts(store, key: str, pc: PseudoCosts) -> None:
    """Write-through of the merged statistics; never fails the solve."""
    try:
        snap = pc.snapshot()
        store.put(key, "pseudocosts", {
            "dsum": snap[0].tolist(), "dcnt": snap[1].tolist(),
            "usum": snap[2].tolist(), "ucnt": snap[3].tolist(),
        })
    except Exception:
        pass


__all__ = ["ParallelBranchBoundBackend", "default_workers"]

"""MILP backend using scipy's HiGHS interface (:func:`scipy.optimize.milp`).

This is the primary backend: HiGHS is an exact branch-and-cut MILP
solver, playing the role Gurobi plays in the paper. The model is
compiled once to sparse range form (``row_lb <= A @ x <= row_ub``, see
:mod:`repro.opt.compile`) and the compiled arrays are handed to HiGHS
directly — repeated solves of the same model skip the flattening
entirely.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.opt.expr import VarType
from repro.opt.model import Model
from repro.opt.result import Solution, SolveStatus
from repro.opt.solvers.base import SolverBackend


class HighsBackend(SolverBackend):
    """Solve MILPs with HiGHS via :func:`scipy.optimize.milp`."""

    name = "highs"

    def solve(
        self,
        model: Model,
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-9,
        verbose: bool = False,
    ) -> Solution:
        compiled = model.compiled()
        if compiled.n == 0:
            return Solution(SolveStatus.OPTIMAL, compiled.obj_offset, {},
                            solver=self.name)

        constraints = []
        if compiled.m:
            constraints = [
                LinearConstraint(compiled.A_csr, compiled.row_lb, compiled.row_ub)
            ]
        bounds = Bounds(compiled.lb, compiled.ub)

        options = {"disp": verbose, "mip_rel_gap": mip_gap}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)

        res = milp(
            c=compiled.c,
            constraints=constraints,
            bounds=bounds,
            integrality=compiled.integrality,
            options=options,
        )

        return self._interpret(res, model, compiled.obj_sign, compiled.obj_offset)

    def _interpret(self, res, model: Model, sign: float, obj_const: float) -> Solution:
        # scipy milp status codes: 0 optimal, 1 iteration/time limit,
        # 2 infeasible, 3 unbounded, 4 other.
        if res.status == 0 and res.x is not None:
            values = self._rounded_values(model, res.x)
            # res.fun is the (possibly sign-flipped) minimization value.
            objective = sign * float(res.fun) + obj_const
            gap = float(res.mip_gap) if getattr(res, "mip_gap", None) is not None else None
            return Solution(SolveStatus.OPTIMAL, objective, values, solver=self.name, gap=gap)
        if res.status == 1:
            if res.x is not None:
                values = self._rounded_values(model, res.x)
                objective = sign * float(res.fun) + obj_const
                return Solution(
                    SolveStatus.FEASIBLE, objective, values, solver=self.name,
                    message="time limit reached with incumbent",
                )
            return Solution(SolveStatus.TIME_LIMIT, solver=self.name, message=res.message)
        if res.status == 2:
            return Solution(SolveStatus.INFEASIBLE, solver=self.name, message=res.message)
        if res.status == 3:
            return Solution(SolveStatus.UNBOUNDED, solver=self.name, message=res.message)
        return Solution(SolveStatus.ERROR, solver=self.name, message=res.message)

    @staticmethod
    def _rounded_values(model: Model, x: np.ndarray) -> dict:
        """Snap integer variables to exact integers (HiGHS returns floats)."""
        values = {}
        for v in model.variables:
            raw = float(x[v.index])
            if v.vtype is not VarType.CONTINUOUS:
                raw = float(round(raw))
            values[v] = raw
        return values

"""MILP backend using scipy's HiGHS interface (:func:`scipy.optimize.milp`).

This is the primary backend: HiGHS is an exact branch-and-cut MILP
solver, playing the role Gurobi plays in the paper. The model is
compiled once to sparse range form (``row_lb <= A @ x <= row_ub``, see
:mod:`repro.opt.compile`) and the compiled arrays are handed to HiGHS
directly — repeated solves of the same model skip the flattening
entirely.

Two reductions run before HiGHS sees the model:

* the repo's vectorized presolve (singleton cascade, bound tightening,
  redundancy elimination) shrinks the array dimensions; fixed variables
  are mapped back into the reported solution afterwards;
* implied-integer variables (counters and indicator chains that are
  forced integral by their defining rows, marked by the model builder
  and the linearizer) are relaxed to continuous in the ``integrality``
  vector, which shrinks HiGHS's branch set without changing any
  optimum. Reported values are still rounded per variable type.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.opt.expr import VarType
from repro.opt.model import Model
from repro.opt.result import Solution, SolveStatus
from repro.opt.solvers.base import SolverBackend


class HighsBackend(SolverBackend):
    """Solve MILPs with HiGHS via :func:`scipy.optimize.milp`."""

    name = "highs"

    def __init__(self, use_presolve: bool = True) -> None:
        self.use_presolve = use_presolve

    def solve(
        self,
        model: Model,
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-9,
        verbose: bool = False,
        warm_start=None,
    ) -> Solution:
        # warm_start is accepted for interface parity but unused:
        # scipy's milp() has no incumbent-injection hook, and HiGHS's
        # own presolve/heuristics find the same incumbents quickly. The
        # portfolio backend exploits warm starts on HiGHS's behalf.
        start = time.perf_counter()
        if self.use_presolve and model.num_vars and model.num_constraints:
            from repro.opt.incremental import map_back_solution
            from repro.opt.presolve import presolve

            reduction = presolve(model)
            presolve_s = time.perf_counter() - start
            if reduction.proven_infeasible:
                sol = Solution(SolveStatus.INFEASIBLE, solver=self.name,
                               message="presolve proved infeasibility")
                sol.timings.add("presolve", presolve_s)
                return sol
            remaining = None
            if time_limit is not None:
                remaining = max(time_limit - presolve_s, 0.01)
            sol = self._solve_compiled(reduction.model, remaining, mip_gap, verbose)
            sol = map_back_solution(sol, model, reduction, self.name)
            sol.timings.add("presolve", presolve_s)
            sol.counters["presolve_fixed"] = len(reduction.fixed)
            sol.counters["presolve_dropped_rows"] = reduction.dropped_constraints
            return sol
        return self._solve_compiled(model, time_limit, mip_gap, verbose)

    def _solve_compiled(self, model: Model, time_limit: Optional[float],
                        mip_gap: float, verbose: bool) -> Solution:
        compiled = model.compiled()
        if compiled.n == 0:
            return Solution(SolveStatus.OPTIMAL, compiled.obj_offset, {},
                            solver=self.name)

        constraints = []
        if compiled.m:
            constraints = [
                LinearConstraint(compiled.A_csr, compiled.row_lb, compiled.row_ub)
            ]
        bounds = Bounds(compiled.lb, compiled.ub)

        options = {"disp": verbose, "mip_rel_gap": mip_gap}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)

        res = milp(
            c=compiled.c,
            constraints=constraints,
            bounds=bounds,
            integrality=compiled.branch_integrality,
            options=options,
        )

        sol = self._interpret(res, model, compiled.obj_sign, compiled.obj_offset)
        nodes = getattr(res, "mip_node_count", None)
        if nodes is not None:
            sol.counters["nodes"] = int(nodes)
        return sol

    def _interpret(self, res, model: Model, sign: float, obj_const: float) -> Solution:
        # scipy milp status codes: 0 optimal, 1 iteration/time limit,
        # 2 infeasible, 3 unbounded, 4 other.
        if res.status == 0 and res.x is not None:
            values = self._rounded_values(model, res.x)
            # res.fun is the (possibly sign-flipped) minimization value.
            objective = sign * float(res.fun) + obj_const
            gap = float(res.mip_gap) if getattr(res, "mip_gap", None) is not None else None
            return Solution(SolveStatus.OPTIMAL, objective, values, solver=self.name, gap=gap)
        if res.status == 1:
            if res.x is not None:
                values = self._rounded_values(model, res.x)
                objective = sign * float(res.fun) + obj_const
                return Solution(
                    SolveStatus.FEASIBLE, objective, values, solver=self.name,
                    message="time limit reached with incumbent",
                )
            return Solution(SolveStatus.TIME_LIMIT, solver=self.name, message=res.message)
        if res.status == 2:
            return Solution(SolveStatus.INFEASIBLE, solver=self.name, message=res.message)
        if res.status == 3:
            return Solution(SolveStatus.UNBOUNDED, solver=self.name, message=res.message)
        return Solution(SolveStatus.ERROR, solver=self.name, message=res.message)

    @staticmethod
    def _rounded_values(model: Model, x: np.ndarray) -> dict:
        """Snap integer variables to exact integers (HiGHS returns
        floats, and implied-integer variables were solved relaxed)."""
        values = {}
        for v in model.variables:
            raw = float(x[v.index])
            if v.vtype is not VarType.CONTINUOUS:
                raw = float(round(raw))
            values[v] = raw
        return values

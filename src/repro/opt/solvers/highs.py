"""MILP backend using scipy's HiGHS interface (:func:`scipy.optimize.milp`).

This is the primary backend: HiGHS is an exact branch-and-cut MILP
solver, playing the role Gurobi plays in the paper. Matrices are built
sparse so the large linearized scheduling models stay tractable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.errors import ModelError
from repro.opt.expr import LinExpr, QuadExpr, Sense, VarType
from repro.opt.model import Model
from repro.opt.result import Solution, SolveStatus
from repro.opt.solvers.base import SolverBackend


def _linear_terms(expr) -> Tuple[dict, float]:
    if isinstance(expr, QuadExpr):
        if expr.quad_terms:
            raise ModelError("HiGHS backend requires a linearized model")
        return expr.lin_terms, expr.constant
    return expr.terms, expr.constant


class HighsBackend(SolverBackend):
    """Solve MILPs with HiGHS via :func:`scipy.optimize.milp`."""

    name = "highs"

    def solve(
        self,
        model: Model,
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-9,
        verbose: bool = False,
    ) -> Solution:
        n = model.num_vars
        if n == 0:
            _, const = _linear_terms(model.objective)
            return Solution(SolveStatus.OPTIMAL, const, {}, solver=self.name)

        obj_terms, obj_const = _linear_terms(model.objective)
        c = np.zeros(n)
        for v, coef in obj_terms.items():
            c[v.index] += coef
        sign = 1.0
        if not model.minimize:
            c = -c
            sign = -1.0

        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        lo: List[float] = []
        hi: List[float] = []
        for r, constr in enumerate(model.constraints):
            terms, const = _linear_terms(constr.expr)
            for v, coef in terms.items():
                rows.append(r)
                cols.append(v.index)
                data.append(coef)
            rhs = -const
            if constr.sense is Sense.LE:
                lo.append(-np.inf)
                hi.append(rhs)
            elif constr.sense is Sense.GE:
                lo.append(rhs)
                hi.append(np.inf)
            else:
                lo.append(rhs)
                hi.append(rhs)

        constraints = []
        if model.constraints:
            a = sparse.csr_matrix(
                (data, (rows, cols)), shape=(len(model.constraints), n)
            )
            constraints = [LinearConstraint(a, np.array(lo), np.array(hi))]

        bounds = Bounds(
            np.array([v.lb for v in model.variables], dtype=float),
            np.array([v.ub for v in model.variables], dtype=float),
        )
        integrality = np.array(
            [0 if v.vtype is VarType.CONTINUOUS else 1 for v in model.variables]
        )

        options = {"disp": verbose, "mip_rel_gap": mip_gap}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)

        res = milp(
            c=c,
            constraints=constraints,
            bounds=bounds,
            integrality=integrality,
            options=options,
        )

        return self._interpret(res, model, sign, obj_const)

    def _interpret(self, res, model: Model, sign: float, obj_const: float) -> Solution:
        # scipy milp status codes: 0 optimal, 1 iteration/time limit,
        # 2 infeasible, 3 unbounded, 4 other.
        if res.status == 0 and res.x is not None:
            values = self._rounded_values(model, res.x)
            # res.fun is the (possibly sign-flipped) minimization value.
            objective = sign * float(res.fun) + obj_const
            gap = float(res.mip_gap) if getattr(res, "mip_gap", None) is not None else None
            return Solution(SolveStatus.OPTIMAL, objective, values, solver=self.name, gap=gap)
        if res.status == 1:
            if res.x is not None:
                values = self._rounded_values(model, res.x)
                objective = sign * float(res.fun) + obj_const
                return Solution(
                    SolveStatus.FEASIBLE, objective, values, solver=self.name,
                    message="time limit reached with incumbent",
                )
            return Solution(SolveStatus.TIME_LIMIT, solver=self.name, message=res.message)
        if res.status == 2:
            return Solution(SolveStatus.INFEASIBLE, solver=self.name, message=res.message)
        if res.status == 3:
            return Solution(SolveStatus.UNBOUNDED, solver=self.name, message=res.message)
        return Solution(SolveStatus.ERROR, solver=self.name, message=res.message)

    @staticmethod
    def _rounded_values(model: Model, x: np.ndarray) -> dict:
        """Snap integer variables to exact integers (HiGHS returns floats)."""
        values = {}
        for v in model.variables:
            raw = float(x[v.index])
            if v.vtype is not VarType.CONTINUOUS:
                raw = float(round(raw))
            values[v] = raw
        return values

"""A self-contained branch-and-bound MILP solver.

This backend exists so the library has a fully-inspectable exact solver
that does not depend on HiGHS's branch-and-cut: LP relaxations are
solved with :func:`scipy.optimize.linprog` (simplex/IPM via HiGHS LP,
which scipy always ships), and the integer search is our own best-first
branch-and-bound with most-fractional branching and incumbent rounding.

It is intended for small-to-medium models (hundreds of variables) and
as a cross-check oracle in tests; the HiGHS MILP backend remains the
default for the large synthesis models.

Implementation notes: the LP matrices come from the model's cached
sparse compilation, and tree nodes store only their branching delta (a
``(parent, variable, side, value)`` tuple) rather than full copies of
the bound arrays — bounds are materialized by walking the parent chain
when a node is popped, so memory per open node is O(1) instead of
O(variables).
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.opt.model import Model
from repro.opt.result import Solution, SolveStatus
from repro.opt.solvers.base import SolverBackend

_INT_TOL = 1e-6


class _Node:
    """A branch-and-bound node: one bound delta layered on its parent.

    ``var < 0`` marks the root. ``is_ub`` selects which bound the delta
    replaces; the full bound vectors are reconstructed on demand by
    :meth:`materialize`, so the open-node heap never holds per-node
    copies of the bound arrays.
    """

    __slots__ = ("parent", "var", "is_ub", "value", "bound")

    def __init__(self, parent: Optional["_Node"], var: int, is_ub: bool,
                 value: float, bound: float) -> None:
        self.parent = parent
        self.var = var
        self.is_ub = is_ub
        self.value = value
        self.bound = bound

    def materialize(self, root_lb: np.ndarray, root_ub: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rebuild this node's bound vectors from the root arrays."""
        lb = root_lb.copy()
        ub = root_ub.copy()
        deltas: List[Tuple[int, bool, float]] = []
        node: Optional[_Node] = self
        while node is not None and node.var >= 0:
            deltas.append((node.var, node.is_ub, node.value))
            node = node.parent
        # Apply root-to-leaf so deeper (tighter) deltas win.
        for var, is_ub, value in reversed(deltas):
            if is_ub:
                ub[var] = value
            else:
                lb[var] = value
        return lb, ub


class BranchBoundBackend(SolverBackend):
    """Best-first branch-and-bound over scipy LP relaxations."""

    name = "branch_bound"

    def __init__(self, max_nodes: int = 200_000, use_presolve: bool = True,
                 cancel_event=None) -> None:
        self.max_nodes = max_nodes
        self.use_presolve = use_presolve
        #: Optional :class:`threading.Event`; when set, the search stops
        #: at the next node boundary (used by the portfolio backend).
        self.cancel_event = cancel_event

    def solve(
        self,
        model: Model,
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-9,
        verbose: bool = False,
    ) -> Solution:
        if self.use_presolve:
            from repro.opt.presolve import presolve

            t0 = time.perf_counter()
            reduction = presolve(model)
            presolve_s = time.perf_counter() - t0
            if reduction.proven_infeasible:
                sol = Solution(SolveStatus.INFEASIBLE, solver=self.name,
                               message="presolve proved infeasibility")
                sol.timings.add("presolve", presolve_s)
                return sol
            inner = BranchBoundBackend(self.max_nodes, use_presolve=False,
                                       cancel_event=self.cancel_event)
            sol = inner.solve(reduction.model, time_limit, mip_gap, verbose)
            sol = _map_back(sol, model, reduction, self.name)
            sol.timings.add("presolve", presolve_s)
            return sol

        if model.num_vars == 0:
            obj = model.objective
            const = getattr(obj, "constant", 0.0)
            return Solution(SolveStatus.OPTIMAL, const, {}, solver=self.name)

        form = model.compiled()
        A_ub, b_ub, A_eq, b_eq = form.split_form()
        start = time.perf_counter()
        deadline = start + time_limit if time_limit is not None else None

        int_idx = np.where(form.integrality == 1)[0]

        def relax(lb: np.ndarray, ub: np.ndarray):
            res = linprog(
                form.c,
                A_ub=A_ub if A_ub.nnz else None,
                b_ub=b_ub if A_ub.nnz else None,
                A_eq=A_eq if A_eq.nnz else None,
                b_eq=b_eq if A_eq.nnz else None,
                bounds=np.column_stack([lb, ub]),
                method="highs",
            )
            return res

        root = relax(form.lb, form.ub)
        if root.status == 2:
            return Solution(SolveStatus.INFEASIBLE, solver=self.name)
        if root.status == 3:
            return Solution(SolveStatus.UNBOUNDED, solver=self.name)
        if root.status != 0:
            return Solution(SolveStatus.ERROR, solver=self.name, message=root.message)

        incumbent_x: Optional[np.ndarray] = None
        incumbent_val = math.inf
        counter = itertools.count()
        root_node = _Node(None, -1, False, 0.0, root.fun)
        heap: List[Tuple[float, int, _Node, np.ndarray]] = []
        heapq.heappush(heap, (root.fun, next(counter), root_node, root.x))
        nodes_explored = 0
        hit_limit = False

        def cutoff() -> float:
            """Prune threshold; +inf while no incumbent exists."""
            if math.isinf(incumbent_val):
                return math.inf
            return incumbent_val - mip_gap * max(1.0, abs(incumbent_val))

        while heap:
            bound, _, node, x = heapq.heappop(heap)
            if bound >= cutoff():
                continue
            nodes_explored += 1
            if nodes_explored > self.max_nodes:
                hit_limit = True
                break
            if deadline is not None and time.perf_counter() > deadline:
                hit_limit = True
                break
            if self.cancel_event is not None and self.cancel_event.is_set():
                hit_limit = True
                break

            frac_i = self._most_fractional(x, int_idx)
            if frac_i is None:
                # Integral relaxation solution: new incumbent.
                if bound < incumbent_val:
                    incumbent_val = bound
                    incumbent_x = x
                continue

            node_lb, node_ub = node.materialize(form.lb, form.ub)
            xf = x[frac_i]
            for direction in ("down", "up"):
                lb = node_lb
                ub = node_ub
                if direction == "down":
                    new_bound_value = math.floor(xf)
                    if lb[frac_i] > new_bound_value:
                        continue
                    ub = node_ub.copy()
                    ub[frac_i] = new_bound_value
                else:
                    new_bound_value = math.ceil(xf)
                    if new_bound_value > ub[frac_i]:
                        continue
                    lb = node_lb.copy()
                    lb[frac_i] = new_bound_value
                res = relax(lb, ub)
                if res.status != 0:
                    continue  # infeasible or failed child: prune
                child_bound = res.fun
                child_x = res.x
                child_frac = self._most_fractional(child_x, int_idx)
                if child_frac is None:
                    if child_bound < incumbent_val:
                        incumbent_val = child_bound
                        incumbent_x = child_x
                elif child_bound < cutoff():
                    child = _Node(node, int(frac_i), direction == "down",
                                  float(new_bound_value), child_bound)
                    heapq.heappush(heap, (child_bound, next(counter), child, child_x))

        if incumbent_x is None:
            if hit_limit:
                return Solution(SolveStatus.TIME_LIMIT, solver=self.name,
                                message=f"stopped after {nodes_explored} nodes")
            return Solution(SolveStatus.INFEASIBLE, solver=self.name)

        x = incumbent_x.copy()
        x[int_idx] = np.round(x[int_idx])
        status = SolveStatus.FEASIBLE if hit_limit and heap else SolveStatus.OPTIMAL
        return Solution(
            status,
            form.report_objective(float(form.c @ x)),
            form.solution_dict(x),
            solver=self.name,
            message=f"{nodes_explored} nodes explored",
        )

    @staticmethod
    def _most_fractional(x: np.ndarray, int_idx: np.ndarray) -> Optional[int]:
        """Index of the integer variable farthest from integrality."""
        if int_idx.size == 0:
            return None
        vals = x[int_idx]
        frac = np.abs(vals - np.round(vals))
        worst = int(np.argmax(frac))
        if frac[worst] <= _INT_TOL:
            return None
        return int(int_idx[worst])


def _map_back(sol: Solution, original: Model, reduction, solver_name: str
              ) -> Solution:
    """Translate a reduced-model solution back to the original model.

    Reduced variables share names with the originals; presolve-fixed
    variables are re-inserted. The objective value is identical because
    presolve folds fixed contributions into the reduced objective.
    """
    if not sol.has_solution:
        sol.solver = solver_name
        return sol
    by_name = {v.name: val for v, val in sol.values.items()}
    values = {}
    for v in original.variables:
        if v in reduction.fixed:
            values[v] = reduction.fixed[v]
        else:
            values[v] = by_name[v.name]
    mapped = Solution(sol.status, sol.objective, values,
                      runtime=sol.runtime, solver=solver_name,
                      gap=sol.gap, message=sol.message)
    mapped.timings = sol.timings
    return mapped

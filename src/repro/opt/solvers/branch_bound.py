"""A self-contained branch-and-bound MILP solver.

This backend exists so the library has a fully-inspectable exact solver
that does not depend on HiGHS's branch-and-cut: LP relaxations are
solved with :func:`scipy.optimize.linprog` (simplex/IPM via HiGHS LP,
which scipy always ships), and the integer search is our own best-first
branch-and-bound with most-fractional branching and incumbent rounding.

It is intended for small-to-medium models (hundreds of variables) and
as a cross-check oracle in tests; the HiGHS MILP backend remains the
default for the large synthesis models.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.opt.model import Model
from repro.opt.result import Solution, SolveStatus
from repro.opt.solvers.base import SolverBackend, StandardForm

_INT_TOL = 1e-6


class _Node:
    """A branch-and-bound node: extra bounds layered on the root LP."""

    __slots__ = ("lb", "ub", "bound")

    def __init__(self, lb: np.ndarray, ub: np.ndarray, bound: float) -> None:
        self.lb = lb
        self.ub = ub
        self.bound = bound


class BranchBoundBackend(SolverBackend):
    """Best-first branch-and-bound over scipy LP relaxations."""

    name = "branch_bound"

    def __init__(self, max_nodes: int = 200_000, use_presolve: bool = True) -> None:
        self.max_nodes = max_nodes
        self.use_presolve = use_presolve

    def solve(
        self,
        model: Model,
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-9,
        verbose: bool = False,
    ) -> Solution:
        if self.use_presolve:
            from repro.opt.presolve import presolve

            reduction = presolve(model)
            if reduction.proven_infeasible:
                return Solution(SolveStatus.INFEASIBLE, solver=self.name,
                                message="presolve proved infeasibility")
            inner = BranchBoundBackend(self.max_nodes, use_presolve=False)
            sol = inner.solve(reduction.model, time_limit, mip_gap, verbose)
            return _map_back(sol, model, reduction, self.name)

        if model.num_vars == 0:
            obj = model.objective
            const = getattr(obj, "constant", 0.0)
            return Solution(SolveStatus.OPTIMAL, const, {}, solver=self.name)
        form = StandardForm(model)
        start = time.perf_counter()
        deadline = start + time_limit if time_limit is not None else None

        int_idx = np.where(form.integrality == 1)[0]

        def relax(lb: np.ndarray, ub: np.ndarray):
            res = linprog(
                form.c,
                A_ub=form.A_ub if form.A_ub.size else None,
                b_ub=form.b_ub if form.b_ub.size else None,
                A_eq=form.A_eq if form.A_eq.size else None,
                b_eq=form.b_eq if form.b_eq.size else None,
                bounds=np.column_stack([lb, ub]),
                method="highs",
            )
            return res

        root = relax(form.lb, form.ub)
        if root.status == 2:
            return Solution(SolveStatus.INFEASIBLE, solver=self.name)
        if root.status == 3:
            return Solution(SolveStatus.UNBOUNDED, solver=self.name)
        if root.status != 0:
            return Solution(SolveStatus.ERROR, solver=self.name, message=root.message)

        incumbent_x: Optional[np.ndarray] = None
        incumbent_val = math.inf
        counter = itertools.count()
        heap: List[Tuple[float, int, _Node, np.ndarray]] = []
        heapq.heappush(
            heap, (root.fun, next(counter), _Node(form.lb.copy(), form.ub.copy(), root.fun), root.x)
        )
        nodes_explored = 0
        hit_limit = False

        def cutoff() -> float:
            """Prune threshold; +inf while no incumbent exists."""
            if math.isinf(incumbent_val):
                return math.inf
            return incumbent_val - mip_gap * max(1.0, abs(incumbent_val))

        while heap:
            bound, _, node, x = heapq.heappop(heap)
            if bound >= cutoff():
                continue
            nodes_explored += 1
            if nodes_explored > self.max_nodes:
                hit_limit = True
                break
            if deadline is not None and time.perf_counter() > deadline:
                hit_limit = True
                break

            frac_i = self._most_fractional(x, int_idx)
            if frac_i is None:
                # Integral relaxation solution: new incumbent.
                if bound < incumbent_val:
                    incumbent_val = bound
                    incumbent_x = x
                continue

            xf = x[frac_i]
            for direction in ("down", "up"):
                lb = node.lb.copy()
                ub = node.ub.copy()
                if direction == "down":
                    ub[frac_i] = math.floor(xf)
                else:
                    lb[frac_i] = math.ceil(xf)
                if lb[frac_i] > ub[frac_i]:
                    continue
                res = relax(lb, ub)
                if res.status != 0:
                    continue  # infeasible or failed child: prune
                child_bound = res.fun
                child_x = res.x
                child_frac = self._most_fractional(child_x, int_idx)
                if child_frac is None:
                    if child_bound < incumbent_val:
                        incumbent_val = child_bound
                        incumbent_x = child_x
                elif child_bound < cutoff():
                    heapq.heappush(
                        heap, (child_bound, next(counter), _Node(lb, ub, child_bound), child_x)
                    )

        if incumbent_x is None:
            if hit_limit:
                return Solution(SolveStatus.TIME_LIMIT, solver=self.name,
                                message=f"stopped after {nodes_explored} nodes")
            return Solution(SolveStatus.INFEASIBLE, solver=self.name)

        x = incumbent_x.copy()
        x[int_idx] = np.round(x[int_idx])
        status = SolveStatus.FEASIBLE if hit_limit and heap else SolveStatus.OPTIMAL
        return Solution(
            status,
            form.report_objective(float(form.c @ x)),
            form.solution_dict(x),
            solver=self.name,
            message=f"{nodes_explored} nodes explored",
        )

    @staticmethod
    def _most_fractional(x: np.ndarray, int_idx: np.ndarray) -> Optional[int]:
        """Index of the integer variable farthest from integrality."""
        if int_idx.size == 0:
            return None
        vals = x[int_idx]
        frac = np.abs(vals - np.round(vals))
        worst = int(np.argmax(frac))
        if frac[worst] <= _INT_TOL:
            return None
        return int(int_idx[worst])


def _map_back(sol: Solution, original: Model, reduction, solver_name: str
              ) -> Solution:
    """Translate a reduced-model solution back to the original model.

    Reduced variables share names with the originals; presolve-fixed
    variables are re-inserted. The objective value is identical because
    presolve folds fixed contributions into the reduced objective.
    """
    if not sol.has_solution:
        sol.solver = solver_name
        return sol
    by_name = {v.name: val for v, val in sol.values.items()}
    values = {}
    for v in original.variables:
        if v in reduction.fixed:
            values[v] = reduction.fixed[v]
        else:
            values[v] = by_name[v.name]
    return Solution(sol.status, sol.objective, values,
                    runtime=sol.runtime, solver=solver_name,
                    gap=sol.gap, message=sol.message)
"""A self-contained branch-and-bound MILP solver.

This backend exists so the library has a fully-inspectable exact solver
that does not depend on HiGHS's branch-and-cut: LP relaxations are
solved with :func:`scipy.optimize.linprog` (simplex/IPM via HiGHS LP,
which scipy always ships), and the integer search is our own best-first
branch-and-bound with most-fractional branching and incumbent rounding.

It is intended for small-to-medium models (hundreds of variables) and
as a cross-check oracle in tests; the HiGHS MILP backend remains the
default for the large synthesis models.

Implementation notes:

* One :class:`~repro.opt.incremental.IncrementalLP` is kept alive for
  the whole tree: the constraint matrix is flattened once and each node
  only applies its bound *deltas* (a root-to-leaf ``(variable, side,
  value)`` chain stored on the node) to the persistent bound vectors —
  no per-node model rebuilds or bound-array copies.
* A root cutting-plane pass adds clique cuts derived from the pairwise
  at-most-one rows (:mod:`repro.opt.cuts`); the cuts are valid for the
  whole tree, so they simply extend the persistent LP.
* A validated warm start seeds the incumbent, so pruning starts with a
  finite cutoff; if the root bound already proves it optimal within the
  gap, the search returns immediately without opening a single node.
* Implied-integer variables (marked by the builder/linearizer) are
  excluded from the branch set.
* The ``time_limit`` clock starts before presolve, so it bounds total
  solver wall time.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from typing import List, Optional, Tuple

import numpy as np

from repro.obs.trace import current_tracer
from repro.opt.cuts import clique_cuts, cut_rows
from repro.opt.incremental import IncrementalLP, map_back_solution
from repro.opt.model import Model
from repro.opt.result import Solution, SolveStatus
from repro.opt.solvers.base import SolverBackend

_INT_TOL = 1e-6

#: Backwards-compatible alias (the helper moved to repro.opt.incremental).
_map_back = map_back_solution


class _Node:
    """A branch-and-bound node: one bound delta layered on its parent.

    ``var < 0`` marks the root. ``is_ub`` selects which bound the delta
    replaces; the root-to-leaf delta chain is recovered on demand by
    :meth:`chain`, so the open-node heap never holds per-node copies of
    the bound arrays.
    """

    __slots__ = ("parent", "var", "is_ub", "value", "bound")

    def __init__(self, parent: Optional["_Node"], var: int, is_ub: bool,
                 value: float, bound: float) -> None:
        self.parent = parent
        self.var = var
        self.is_ub = is_ub
        self.value = value
        self.bound = bound

    def chain(self) -> List[Tuple[int, bool, float]]:
        """This node's bound deltas in root-to-leaf order."""
        deltas: List[Tuple[int, bool, float]] = []
        node: Optional[_Node] = self
        while node is not None and node.var >= 0:
            deltas.append((node.var, node.is_ub, node.value))
            node = node.parent
        deltas.reverse()
        return deltas

    def materialize(self, root_lb: np.ndarray, root_ub: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rebuild this node's bound vectors from the root arrays."""
        lb = root_lb.copy()
        ub = root_ub.copy()
        for var, is_ub, value in self.chain():
            if is_ub:
                ub[var] = value
            else:
                lb[var] = value
        return lb, ub


class BranchBoundBackend(SolverBackend):
    """Best-first branch-and-bound over a persistent scipy LP."""

    name = "branch_bound"

    def __init__(self, max_nodes: int = 200_000, use_presolve: bool = True,
                 use_cuts: bool = True, cancel_event=None) -> None:
        self.max_nodes = max_nodes
        self.use_presolve = use_presolve
        self.use_cuts = use_cuts
        #: Optional :class:`threading.Event`; when set, the search stops
        #: at the next node boundary (used by the portfolio backend).
        self.cancel_event = cancel_event

    def solve(
        self,
        model: Model,
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-9,
        verbose: bool = False,
        warm_start=None,
    ) -> Solution:
        # The clock starts here — before presolve — so time_limit bounds
        # the solver's total wall time, not just the tree search.
        start = time.perf_counter()
        deadline = start + time_limit if time_limit is not None else None

        if self.use_presolve:
            from repro.opt.presolve import presolve

            reduction = presolve(model)
            presolve_s = time.perf_counter() - start
            if reduction.proven_infeasible:
                sol = Solution(SolveStatus.INFEASIBLE, solver=self.name,
                               message="presolve proved infeasibility")
                sol.timings.add("presolve", presolve_s)
                return sol
            inner = BranchBoundBackend(self.max_nodes, use_presolve=False,
                                       use_cuts=self.use_cuts,
                                       cancel_event=self.cancel_event)
            remaining = None
            if deadline is not None:
                remaining = max(deadline - time.perf_counter(), 0.0)
            sol = inner.solve(reduction.model, remaining, mip_gap, verbose,
                              warm_start=warm_start)
            sol = map_back_solution(sol, model, reduction, self.name)
            sol.timings.add("presolve", presolve_s)
            sol.counters["presolve_fixed"] = len(reduction.fixed)
            return sol

        if model.num_vars == 0:
            obj = model.objective
            const = getattr(obj, "constant", 0.0)
            return Solution(SolveStatus.OPTIMAL, const, {}, solver=self.name)

        form = model.compiled()
        lp = IncrementalLP(form)
        branch_idx = np.where(form.branch_integrality == 1)[0]
        int_idx = np.where(form.integrality == 1)[0]

        # Solver-progress telemetry (repro.obs): None when disabled, in
        # which case every emission site below is a single falsy check.
        tracer = current_tracer()

        cliques = clique_cuts(form) if self.use_cuts else []
        if cliques:
            lp.add_cuts(*cut_rows(form, cliques))
            if tracer is not None:
                tracer.event("cut_round", solver=self.name,
                             cuts=len(cliques), kind="clique")

        # Seed the incumbent from the (already validated) warm start.
        incumbent_x: Optional[np.ndarray] = None
        incumbent_val = math.inf
        incumbent_source = ""
        if warm_start is not None:
            x_warm = warm_start.vector(form)
            if x_warm is not None and lp.check_feasible(x_warm):
                incumbent_x = x_warm
                incumbent_val = float(form.c @ x_warm)
                incumbent_source = warm_start.source
                if tracer is not None:
                    tracer.event(
                        "incumbent", solver=self.name, nodes=0,
                        objective=form.report_objective(incumbent_val),
                        source=incumbent_source,
                    )

        root = lp.solve()
        if tracer is not None and root.status == 0:
            tracer.event("bound", solver=self.name,
                         bound=form.report_objective(root.fun), nodes=0)
        if root.status == 2:
            return Solution(SolveStatus.INFEASIBLE, solver=self.name)
        if root.status == 3:
            return Solution(SolveStatus.UNBOUNDED, solver=self.name)
        if root.status != 0:
            return Solution(SolveStatus.ERROR, solver=self.name, message=root.message)

        counter = itertools.count()
        root_node = _Node(None, -1, False, 0.0, root.fun)
        heap: List[Tuple[float, int, _Node, np.ndarray]] = []
        heapq.heappush(heap, (root.fun, next(counter), root_node, root.x))
        nodes_explored = 0
        hit_limit = False

        def cutoff() -> float:
            """Prune threshold; +inf while no incumbent exists."""
            if math.isinf(incumbent_val):
                return math.inf
            return incumbent_val - mip_gap * max(1.0, abs(incumbent_val))

        def note_incumbent(value: float, nodes: int) -> None:
            if tracer is not None:
                tracer.event("incumbent", solver=self.name, nodes=nodes,
                             objective=form.report_objective(value),
                             source="search")

        while heap:
            bound, _, node, x = heapq.heappop(heap)
            if bound >= cutoff():
                continue
            nodes_explored += 1
            if nodes_explored > self.max_nodes:
                hit_limit = True
                if tracer is not None:
                    tracer.event("progress", solver=self.name, stop="node_limit",
                                 nodes=nodes_explored)
                break
            if deadline is not None and time.perf_counter() > deadline:
                hit_limit = True
                if tracer is not None:
                    tracer.event("deadline", where=self.name,
                                 nodes=nodes_explored, budget=time_limit)
                break
            if self.cancel_event is not None and self.cancel_event.is_set():
                hit_limit = True
                if tracer is not None:
                    tracer.event("progress", solver=self.name, stop="cancelled",
                                 nodes=nodes_explored)
                break
            if tracer is not None and nodes_explored % 1024 == 0:
                tracer.event("progress", solver=self.name,
                             nodes=nodes_explored, open=len(heap),
                             lp_calls=lp.lp_calls,
                             bound=form.report_objective(bound))

            frac_i = self._most_fractional(x, branch_idx)
            if frac_i is None:
                # Integral relaxation solution: new incumbent.
                if bound < incumbent_val:
                    incumbent_val = bound
                    incumbent_x = x
                    note_incumbent(bound, nodes_explored)
                continue

            lp.set_bounds(node.chain())
            xf = x[frac_i]
            for direction in ("down", "up"):
                if direction == "down":
                    new_bound_value = math.floor(xf)
                    if lp.lb[frac_i] > new_bound_value:
                        continue
                    is_ub = True
                else:
                    new_bound_value = math.ceil(xf)
                    if new_bound_value > lp.ub[frac_i]:
                        continue
                    is_ub = False
                with lp.tightened(frac_i, is_ub, float(new_bound_value)):
                    res = lp.solve()
                if res.status != 0:
                    continue  # infeasible or failed child: prune
                child_bound = res.fun
                child_x = res.x
                child_frac = self._most_fractional(child_x, branch_idx)
                if child_frac is None:
                    if child_bound < incumbent_val:
                        incumbent_val = child_bound
                        incumbent_x = child_x
                        note_incumbent(child_bound, nodes_explored)
                elif child_bound < cutoff():
                    child = _Node(node, int(frac_i), is_ub,
                                  float(new_bound_value), child_bound)
                    heapq.heappush(heap, (child_bound, next(counter), child, child_x))

        counters = {
            "nodes": nodes_explored,
            "lp_calls": lp.lp_calls,
            "lp_iterations": lp.lp_iterations,
            "cuts": lp.cuts_added,
        }
        if incumbent_source:
            counters["incumbent_seeded"] = 1

        if incumbent_x is None:
            if hit_limit:
                sol = Solution(SolveStatus.TIME_LIMIT, solver=self.name,
                               message=f"stopped after {nodes_explored} nodes")
            else:
                sol = Solution(SolveStatus.INFEASIBLE, solver=self.name)
            sol.counters.update(counters)
            return sol

        x = incumbent_x.copy()
        x[int_idx] = np.round(x[int_idx])
        status = SolveStatus.FEASIBLE if hit_limit and heap else SolveStatus.OPTIMAL
        message = f"{nodes_explored} nodes explored"
        if incumbent_source:
            message += f"; incumbent seeded from {incumbent_source}"
        sol = Solution(
            status,
            form.report_objective(float(form.c @ x)),
            form.solution_dict(x),
            solver=self.name,
            message=message,
        )
        sol.counters.update(counters)
        return sol

    @staticmethod
    def _most_fractional(x: np.ndarray, int_idx: np.ndarray) -> Optional[int]:
        """Index of the integer variable farthest from integrality."""
        if int_idx.size == 0:
            return None
        vals = x[int_idx]
        frac = np.abs(vals - np.round(vals))
        worst = int(np.argmax(frac))
        if frac[worst] <= _INT_TOL:
            return None
        return int(int_idx[worst])

"""Common interface and utilities for MILP solver backends."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.opt.expr import LinExpr, QuadExpr, Sense, VarType
from repro.opt.model import Model
from repro.opt.result import Solution


class SolverBackend:
    """Interface every backend implements."""

    name = "base"

    def solve(
        self,
        model: Model,
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-9,
        verbose: bool = False,
    ) -> Solution:
        raise NotImplementedError


class StandardForm:
    """A model flattened to matrix form.

    ``minimize c @ x`` subject to ``A_ub @ x <= b_ub``,
    ``A_eq @ x == b_eq``, ``lb <= x <= ub``, with ``integrality`` flags
    (1 = integer, 0 = continuous). The objective is always stated as a
    minimization; ``obj_sign`` records the flip needed to report the
    original objective value, and ``obj_offset`` the constant term.
    """

    def __init__(self, model: Model) -> None:
        if not model.is_linear():
            raise ModelError("StandardForm requires a linear model; linearize first")
        n = model.num_vars
        self.variables = list(model.variables)
        self.n = n

        obj = model.objective
        if isinstance(obj, QuadExpr):
            obj = LinExpr(dict(obj.lin_terms), obj.constant)
        c = np.zeros(n)
        for v, coef in obj.terms.items():
            c[v.index] += coef
        self.obj_offset = obj.constant
        self.obj_sign = 1.0
        if not model.minimize:
            c = -c
            self.obj_sign = -1.0
        self.c = c

        ub_rows: List[Tuple[dict, float]] = []
        eq_rows: List[Tuple[dict, float]] = []
        for constr in model.constraints:
            expr = constr.expr
            if isinstance(expr, QuadExpr):
                expr = LinExpr(dict(expr.lin_terms), expr.constant)
            row = {v.index: coef for v, coef in expr.terms.items()}
            rhs = -expr.constant
            if constr.sense is Sense.LE:
                ub_rows.append((row, rhs))
            elif constr.sense is Sense.GE:
                ub_rows.append(({i: -coef for i, coef in row.items()}, -rhs))
            else:
                eq_rows.append((row, rhs))

        self.A_ub, self.b_ub = _rows_to_dense(ub_rows, n)
        self.A_eq, self.b_eq = _rows_to_dense(eq_rows, n)

        self.lb = np.array([v.lb for v in self.variables], dtype=float)
        self.ub = np.array([v.ub for v in self.variables], dtype=float)
        self.integrality = np.array(
            [0 if v.vtype is VarType.CONTINUOUS else 1 for v in self.variables]
        )

    def report_objective(self, min_value: float) -> float:
        """Convert an internal minimization value to the user objective.

        The sign flip applies only to the variable part (the constant
        term was never negated when building ``c``).
        """
        return self.obj_sign * min_value + self.obj_offset

    def solution_dict(self, x: np.ndarray) -> dict:
        return {v: float(x[v.index]) for v in self.variables}


def _rows_to_dense(rows: List[Tuple[dict, float]], n: int):
    if not rows:
        return np.zeros((0, n)), np.zeros(0)
    a = np.zeros((len(rows), n))
    b = np.zeros(len(rows))
    for r, (row, rhs) in enumerate(rows):
        for idx, coef in row.items():
            a[r, idx] = coef
        b[r] = rhs
    return a, b

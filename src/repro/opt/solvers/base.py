"""Common interface and utilities for MILP solver backends."""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.opt.model import Model
from repro.opt.result import Solution


class SolverBackend:
    """Interface every backend implements.

    ``warm_start`` is an optional, already-validated
    :class:`~repro.opt.incremental.WarmStart`; backends that cannot use
    one must accept and ignore it. A warm start may only ever speed a
    search up — status and objective must not depend on it.
    """

    name = "base"

    def solve(
        self,
        model: Model,
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-9,
        verbose: bool = False,
        warm_start=None,
    ) -> Solution:
        raise NotImplementedError


def merge_counters(*counter_dicts: Mapping[str, object]) -> Dict[str, object]:
    """Sum solver counters from several search loops into one dict.

    Numeric values add; everything else (strings, and identity-like
    values whose key ends in ``_hash``) keeps the first occurrence. This
    is the aggregation rule shared by the multi-worker backends (one
    counter dict per worker/round) and the portfolio's cross-member
    roll-up — historically each assumed a single solver loop and simply
    overwrote.
    """
    merged: Dict[str, object] = {}
    for counters in counter_dicts:
        for key, value in counters.items():
            if (key.endswith("_hash") or isinstance(value, bool)
                    or not isinstance(value, (int, float))):
                merged.setdefault(key, value)
            else:
                merged[key] = merged.get(key, 0) + value  # type: ignore
    return merged


class StandardForm:
    """A model flattened to dense matrix form.

    ``minimize c @ x`` subject to ``A_ub @ x <= b_ub``,
    ``A_eq @ x == b_eq``, ``lb <= x <= ub``, with ``integrality`` flags
    (1 = integer, 0 = continuous). The objective is always stated as a
    minimization; ``obj_sign`` records the flip needed to report the
    original objective value, and ``obj_offset`` the constant term.

    This is now a thin dense view over the cached sparse
    :class:`~repro.opt.compile.CompiledModel`; backends that can consume
    sparse matrices should use ``model.compiled()`` directly.
    """

    def __init__(self, model: Model) -> None:
        compiled = model.compiled()
        self.variables = compiled.variables
        self.n = compiled.n
        self.c = compiled.c
        self.obj_offset = compiled.obj_offset
        self.obj_sign = compiled.obj_sign

        A_ub, b_ub, A_eq, b_eq = compiled.split_form()
        self.A_ub = A_ub.toarray() if A_ub.shape[0] else np.zeros((0, compiled.n))
        self.b_ub = b_ub
        self.A_eq = A_eq.toarray() if A_eq.shape[0] else np.zeros((0, compiled.n))
        self.b_eq = b_eq

        self.lb = compiled.lb
        self.ub = compiled.ub
        self.integrality = compiled.integrality

    def report_objective(self, min_value: float) -> float:
        """Convert an internal minimization value to the user objective.

        The sign flip applies only to the variable part (the constant
        term was never negated when building ``c``).
        """
        return self.obj_sign * min_value + self.obj_offset

    def solution_dict(self, x: np.ndarray) -> dict:
        return {v: float(x[v.index]) for v in self.variables}

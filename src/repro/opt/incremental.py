"""Incremental solve machinery: warm starts, persistent LPs, re-solve contexts.

Three pieces that let related solves share work instead of starting
cold every time:

* :class:`WarmStart` — a complete feasible assignment (by variable
  name) plus its objective value, handed to a backend as the initial
  incumbent so pruning starts with a finite cutoff.
* :class:`IncrementalLP` — one LP relaxation kept alive for a whole
  branch-and-bound tree. The constraint matrix is flattened exactly
  once (from the model's cached sparse compilation); each node applies
  only its bound *deltas* to a pair of persistent bound vectors and
  reverts them afterwards, so the per-node cost is the LP solve itself,
  not model rebuilding. Cut rows (e.g. clique cuts from
  :mod:`repro.opt.cuts`) can be appended once and are seen by every
  later relaxation.
* :class:`SolveContext` — a cache threaded through
  :func:`repro.core.synthesizer.synthesize` by the experiment runners
  and sensitivity sweeps. Binding-policy comparisons and α/β sweeps
  solve near-identical models; the context keeps the built model (and
  with it the compiled arrays and cut pool, which are cached *on* the
  model) and remembers each optimum so the next structurally-identical
  solve can start from it.

Nothing here changes what is solved — warm starts are validated before
use and an exact search still runs to proven optimality, so objective
values are identical to a cold solve (guarded by
``tests/test_warm_resolve.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.obs.trace import current_tracer


@dataclass
class WarmStart:
    """A feasible assignment offered to a backend as initial incumbent.

    ``values`` maps variable *names* to values (names survive presolve
    and model reduction, variable objects do not). ``objective`` is the
    user-space objective of the assignment.
    """

    values: Dict[str, float]
    objective: float
    source: str = "warm"

    def vector(self, compiled) -> Optional[np.ndarray]:
        """The assignment as a column vector over ``compiled``'s
        variables, or None when any variable is missing a value."""
        x = np.empty(compiled.n)
        values = self.values
        for v in compiled.variables:
            val = values.get(v.name)
            if val is None:
                return None
            x[v.index] = val
        return x


class IncrementalLP:
    """A persistent LP relaxation over a compiled model.

    The split ``A_ub``/``A_eq`` matrices are taken from the compiled
    model once; bound vectors are owned working copies. A
    branch-and-bound tree calls :meth:`set_bounds` with a node's delta
    chain (reverting the previous node's deltas first — O(depth), not
    O(n)) and :meth:`tightened` for the one extra bound of each child.
    """

    def __init__(self, compiled) -> None:
        self.form = compiled
        A_ub, b_ub, A_eq, b_eq = compiled.split_form()
        self._A_ub, self._b_ub = A_ub, b_ub
        self._A_eq, self._b_eq = A_eq, b_eq
        self._base_lb = compiled.lb.copy()
        self._base_ub = compiled.ub.copy()
        self._lb = compiled.lb.copy()
        self._ub = compiled.ub.copy()
        self._touched: set = set()
        self.lp_calls = 0
        self.lp_iterations = 0
        self.cuts_added = 0
        # Metric instruments are resolved once here (not per solve) so
        # the traced hot path pays one attribute check per LP re-solve;
        # with tracing disabled both stay None.
        tracer = current_tracer()
        self._lp_counter = (tracer.metrics.counter("lp_resolves")
                            if tracer is not None else None)
        self._lp_iter_hist = (tracer.metrics.histogram("lp_iterations_per_resolve")
                              if tracer is not None else None)

    # -- bound management ----------------------------------------------
    @property
    def lb(self) -> np.ndarray:
        """Current node's lower bounds (read-only by convention)."""
        return self._lb

    @property
    def ub(self) -> np.ndarray:
        """Current node's upper bounds (read-only by convention)."""
        return self._ub

    def set_bounds(self, deltas: Iterable[Tuple[int, bool, float]]) -> None:
        """Make the working bounds equal root bounds + ``deltas``.

        ``deltas`` is a root-to-leaf sequence of ``(var index, is_ub,
        value)`` tuples; later entries win, matching the node chain of
        the branch-and-bound tree.
        """
        for j in self._touched:
            self._lb[j] = self._base_lb[j]
            self._ub[j] = self._base_ub[j]
        self._touched.clear()
        for j, is_ub, value in deltas:
            if is_ub:
                self._ub[j] = value
            else:
                self._lb[j] = value
            self._touched.add(j)

    @contextmanager
    def tightened(self, j: int, is_ub: bool, value: float) -> Iterator[None]:
        """Temporarily overlay one extra bound on the current node."""
        old_lb, old_ub = self._lb[j], self._ub[j]
        if is_ub:
            self._ub[j] = value
        else:
            self._lb[j] = value
        self._touched.add(j)
        try:
            yield
        finally:
            self._lb[j], self._ub[j] = old_lb, old_ub

    # -- cuts ----------------------------------------------------------
    def add_cuts(self, A_rows: sparse.spmatrix, b_rows: np.ndarray) -> None:
        """Append ``A_rows @ x <= b_rows`` for all subsequent solves."""
        if A_rows.shape[0] == 0:
            return
        if self._A_ub.shape[0]:
            self._A_ub = sparse.vstack([self._A_ub, A_rows], format="csr")
            self._b_ub = np.concatenate([self._b_ub, b_rows])
        else:
            self._A_ub = A_rows.tocsr()
            self._b_ub = np.asarray(b_rows, dtype=float)
        self.cuts_added += int(A_rows.shape[0])

    # -- solving -------------------------------------------------------
    def solve(self):
        """Solve the relaxation under the current working bounds."""
        res = linprog(
            self.form.c,
            A_ub=self._A_ub if self._A_ub.nnz else None,
            b_ub=self._b_ub if self._A_ub.nnz else None,
            A_eq=self._A_eq if self._A_eq.nnz else None,
            b_eq=self._b_eq if self._A_eq.nnz else None,
            bounds=np.column_stack([self._lb, self._ub]),
            method="highs",
        )
        self.lp_calls += 1
        nit = getattr(res, "nit", 0)
        iterations = int(nit) if nit is not None else 0
        self.lp_iterations += iterations
        if self._lp_counter is not None:
            self._lp_counter.inc()
            self._lp_iter_hist.observe(iterations)
        return res

    def check_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Whether ``x`` satisfies bounds, rows and integrality."""
        if (x < self._base_lb - tol).any() or (x > self._base_ub + tol).any():
            return False
        form = self.form
        if form.m:
            row = form.A_csr @ x
            if (row < form.row_lb - tol).any() or (row > form.row_ub + tol).any():
                return False
        ints = form.integrality == 1
        if ints.any() and (np.abs(x[ints] - np.round(x[ints])) > tol).any():
            return False
        return True


class SolveContext:
    """Shared cache for families of related synthesis solves.

    The experiment runners solve the *same* case under three binding
    policies and the sensitivity module re-solves one case under many
    α/β weightings. A context keyed on the structural part of the spec
    (everything except the objective weights) lets those runs reuse:

    * the built model — and through it the compiled sparse arrays and
      the clique-cut pool, both cached on the model objects;
    * the previous optimum as a warm-start incumbent for backends that
      accept one (branch-and-bound, portfolio).

    The context stores plain data (name-keyed value dicts); consumers
    decide how to map it onto their model. ``stats`` counts hits and
    misses for instrumentation.
    """

    def __init__(self) -> None:
        self._models: Dict[Any, Any] = {}
        self._incumbents: Dict[Any, Dict[str, float]] = {}
        self.stats: Dict[str, int] = {
            "model_hits": 0,
            "model_misses": 0,
            "incumbents_stored": 0,
            "warm_starts_served": 0,
        }

    def built_model(self, key: Any, build: Callable[[], Any]) -> Any:
        """The cached artifact for ``key``, building it on first use."""
        cached = self._models.get(key)
        if cached is None:
            self.stats["model_misses"] += 1
            cached = build()
            self._models[key] = cached
        else:
            self.stats["model_hits"] += 1
        return cached

    def note_solution(self, key: Any, values_by_name: Dict[str, float]) -> None:
        """Remember an optimum's assignment for future warm starts."""
        self._incumbents[key] = dict(values_by_name)
        self.stats["incumbents_stored"] += 1

    def incumbent(self, key: Any) -> Optional[Dict[str, float]]:
        """The last stored assignment for ``key`` (a copy), if any."""
        stored = self._incumbents.get(key)
        if stored is None:
            return None
        self.stats["warm_starts_served"] += 1
        return dict(stored)

    def __repr__(self) -> str:
        return (f"SolveContext(models={len(self._models)}, "
                f"incumbents={len(self._incumbents)}, stats={self.stats})")


def map_back_solution(sol, original, reduction, solver_name: str):
    """Translate a reduced-model solution back to the original model.

    Reduced variables share names with the originals; presolve-fixed
    variables are re-inserted. The objective value is identical because
    presolve folds fixed contributions into the reduced objective.
    """
    from repro.opt.result import Solution

    if not sol.has_solution:
        sol.solver = solver_name
        return sol
    by_name = {v.name: val for v, val in sol.values.items()}
    values = {}
    for v in original.variables:
        if v in reduction.fixed:
            values[v] = reduction.fixed[v]
        else:
            values[v] = by_name[v.name]
    mapped = Solution(sol.status, sol.objective, values,
                      runtime=sol.runtime, solver=solver_name,
                      gap=sol.gap, message=sol.message)
    mapped.timings = sol.timings
    mapped.counters = sol.counters
    return mapped


__all__ = ["WarmStart", "IncrementalLP", "SolveContext", "map_back_solution"]

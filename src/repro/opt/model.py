"""The optimization model container.

:class:`Model` collects variables, (possibly quadratic) constraints and
an objective, and dispatches to a solver backend. Quadratic models are
linearized exactly before solving (see :mod:`repro.opt.linearize`), so
every backend only ever sees a mixed-integer *linear* program.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ModelError, SolverError
from repro.obs.trace import obs_event, obs_span
from repro.opt.expr import (
    Constraint,
    ExprLike,
    LinExpr,
    QuadExpr,
    Sense,
    Var,
    VarType,
    quicksum,
)
from repro.opt.result import Solution, SolveStatus

_model_counter = itertools.count()


class Model:
    """A mixed-integer (quadratic) program.

    Typical usage::

        m = Model("demo")
        x = m.add_var("x", VarType.BINARY)
        y = m.add_var("y", VarType.BINARY)
        m.add_constr(x + y <= 1, "pick_one")
        m.set_objective(x + 2 * y, sense="max")
        sol = m.solve()
        sol.value(x)
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._id = next(_model_counter)
        self.variables: List[Var] = []
        self.constraints: List[Constraint] = []
        self.objective: ExprLike = LinExpr()
        self.minimize = True
        self._names: Dict[str, Var] = {}
        # Mutation counter: bumped by every structural change so the
        # compiled sparse form (repro.opt.compile) can be cached safely.
        self._version = 0
        self._compiled = None
        # Names of integer variables whose integrality is implied by the
        # rest of the model (see mark_implied_integer).
        self._implied_int_names: set = set()
        # Conclusive solve results keyed by (version, backend, gap); a
        # re-solve of the unchanged model returns a cached copy.
        self._solutions: Dict[Tuple, Solution] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str,
        vtype: VarType = VarType.CONTINUOUS,
        lb: float = 0.0,
        ub: Optional[float] = None,
    ) -> Var:
        """Create and register a new decision variable.

        ``ub=None`` means 1 for binaries and +inf otherwise. Variable
        names must be unique within the model.
        """
        if name in self._names:
            raise ModelError(f"duplicate variable name {name!r}")
        if vtype is VarType.BINARY:
            lb, ub = 0, 1
        elif ub is None:
            ub = float("inf")
        var = Var(name, vtype, lb, ub, index=len(self.variables), model_id=self._id)
        self.variables.append(var)
        self._names[name] = var
        self._version += 1
        return var

    def add_binary(self, name: str) -> Var:
        """Shorthand for :meth:`add_var` with a binary domain."""
        return self.add_var(name, VarType.BINARY)

    def add_integer(self, name: str, lb: float = 0.0, ub: Optional[float] = None) -> Var:
        """Shorthand for :meth:`add_var` with an integer domain."""
        return self.add_var(name, VarType.INTEGER, lb, ub)

    def var_by_name(self, name: str) -> Var:
        """Look up a variable by its unique name."""
        try:
            return self._names[name]
        except KeyError:
            raise ModelError(f"no variable named {name!r}") from None

    def add_constr(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built with ``<=``, ``>=`` or ``==``."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constr expects a Constraint (did the comparison return a bool?)"
            )
        self._check_ownership(constraint.expr)
        if name:
            constraint.name = name
        elif not constraint.name:
            constraint.name = f"c{len(self.constraints)}"
        self.constraints.append(constraint)
        self._version += 1
        return constraint

    def add_constrs(self, constraints: Iterable[Constraint], prefix: str = "") -> List[Constraint]:
        """Register several constraints, auto-numbering their names."""
        added = []
        for i, c in enumerate(constraints):
            added.append(self.add_constr(c, f"{prefix}{i}" if prefix else ""))
        return added

    def set_objective(self, expr: ExprLike, sense: str = "min") -> None:
        """Set the objective. ``sense`` is ``"min"`` or ``"max"``."""
        if sense not in ("min", "max"):
            raise ModelError(f"objective sense must be 'min' or 'max', got {sense!r}")
        if isinstance(expr, Var):
            expr = expr.to_linexpr()
        if isinstance(expr, (int, float)):
            expr = LinExpr({}, float(expr))
        self._check_ownership(expr)
        self.objective = expr
        self.minimize = sense == "min"
        self._version += 1

    def mark_implied_integer(self, *variables: Var) -> None:
        """Declare integer variables whose integrality is *implied*.

        An implied-integer variable is forced to an integral value by
        its defining constraints whenever the remaining integer
        variables take integral values (e.g. a counter defined by an
        equality over binaries). Backends may then drop it from the
        branch set — a pure search-space reduction that cannot change
        any optimal objective value. Only mark a variable when every
        integral completion of the others forces it; when in doubt,
        leave it enforced.
        """
        for v in variables:
            if v._model_id != self._id:
                raise ModelError(
                    f"variable {v.name!r} belongs to a different model than {self.name!r}"
                )
            if v.vtype is VarType.CONTINUOUS:
                continue
            self._implied_int_names.add(v.name)
        self._version += 1

    def _check_ownership(self, expr: ExprLike) -> None:
        if isinstance(expr, LinExpr):
            vars_ = expr.terms.keys()
        elif isinstance(expr, QuadExpr):
            vars_ = list(expr.lin_terms.keys()) + [v for pair in expr.quad_terms for v in pair]
        else:
            return
        for v in vars_:
            if v._model_id != self._id:
                raise ModelError(
                    f"variable {v.name!r} belongs to a different model than {self.name!r}"
                )

    # ------------------------------------------------------------------
    # compilation cache
    # ------------------------------------------------------------------
    def compiled(self):
        """The model in sparse matrix form (cached; see repro.opt.compile).

        The cache is invalidated automatically by :meth:`add_var`,
        :meth:`add_constr` and :meth:`set_objective`; after mutating a
        registered constraint's expression in place, call
        :meth:`invalidate` manually.
        """
        from repro.opt.compile import compile_model

        return compile_model(self)

    def invalidate(self) -> None:
        """Drop the cached compiled form after an in-place mutation."""
        self._version += 1
        self._compiled = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def is_linear(self) -> bool:
        """Whether the model (objective and all constraints) is linear."""
        obj_linear = not (isinstance(self.objective, QuadExpr) and self.objective.quad_terms)
        return obj_linear and all(c.is_linear() for c in self.constraints)

    def stats(self) -> Dict[str, int]:
        """Size statistics: variable counts by type, constraint counts
        by sense, and the number of distinct quadratic products."""
        by_type = {"binary": 0, "integer": 0, "continuous": 0}
        for v in self.variables:
            if v.vtype is VarType.BINARY:
                by_type["binary"] += 1
            elif v.vtype is VarType.INTEGER:
                by_type["integer"] += 1
            else:
                by_type["continuous"] += 1
        by_sense = {"<=": 0, ">=": 0, "==": 0}
        nonzeros = 0
        products = set()
        for c in self.constraints:
            by_sense[c.sense.value] += 1
            expr = c.expr
            if isinstance(expr, QuadExpr):
                nonzeros += len(expr.lin_terms) + len(expr.quad_terms)
                products.update(expr.quad_terms)
            else:
                nonzeros += len(expr.terms)
        obj = self.objective
        if isinstance(obj, QuadExpr):
            products.update(obj.quad_terms)
        return {
            "variables": self.num_vars,
            **by_type,
            "constraints": self.num_constraints,
            "le": by_sense["<="],
            "ge": by_sense[">="],
            "eq": by_sense["=="],
            "nonzeros": nonzeros,
            "quadratic_products": len(products),
        }

    def check_assignment(
        self, assignment: Dict[Var, float], tol: float = 1e-6
    ) -> List[Constraint]:
        """Return the constraints violated by a complete assignment."""
        return [c for c in self.constraints if not c.satisfied(assignment, tol)]

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(
        self,
        backend: str = "auto",
        time_limit: Optional[float] = None,
        mip_gap: float = 1e-9,
        verbose: bool = False,
        warm_start: Optional[Dict[Var, float]] = None,
        warm_source: str = "warm",
    ) -> Solution:
        """Solve the model and return a :class:`Solution`.

        ``backend`` is one of ``"auto"``, ``"highs"``, ``"branch_bound"``,
        ``"backtrack"`` or ``"portfolio"``. ``"auto"`` picks HiGHS when
        scipy provides it and falls back to the built-in
        branch-and-bound otherwise. Quadratic models are linearized
        exactly first; the reported solution only contains the original
        variables. The returned solution carries a per-phase wall-clock
        breakdown in ``solution.timings`` and search counters in
        ``solution.counters``.

        ``warm_start`` optionally supplies a complete assignment of the
        original variables. It is validated against the constraints
        (silently dropped when violated) and offered to the backend as
        its initial incumbent; backends without warm-start support
        ignore it, so the returned status/objective never depend on it.

        Re-solving an unchanged model with the same backend and gap
        returns a cached copy of the previous *conclusive* result
        (optimal/infeasible/unbounded — all independent of any time
        limit); any structural mutation invalidates the cache.
        """
        from repro.opt.linearize import linearize
        from repro.opt.solvers import get_backend
        from repro.perf import PerfRecorder

        start = time.perf_counter()
        cache_key = (self._version, backend, float(mip_gap))
        cached = self._solutions.get(cache_key)
        if cached is not None:
            hit = cached.clone()
            hit.runtime = time.perf_counter() - start
            hit.timings = type(hit.timings)()
            hit.timings.add("solve", hit.runtime)
            hit.counters["resolve_cache_hit"] = 1
            obs_event("cache_hit", kind="resolve", model=self.name,
                      status=hit.status.value)
            return hit

        recorder = PerfRecorder(self.name)
        if self.is_linear():
            work_model, back_map = self, None
        else:
            with recorder.phase("linearize"):
                work_model, back_map = linearize(self)

        warm = None
        if warm_start is not None:
            warm = self._build_warm_start(warm_start, back_map, warm_source)

        solver = get_backend(backend)
        t_backend = time.perf_counter()
        # The timings ledger splits presolve out of the backend wall time
        # below; the span deliberately covers the whole backend call so
        # solver-internal spans and events nest under one "solve" node.
        with obs_span("solve", kind="phase", model=self.name,
                      backend=solver.name):
            solution = solver.solve(
                work_model, time_limit=time_limit, mip_gap=mip_gap,
                verbose=verbose, warm_start=warm,
            )
        # The backend reports its presolve share in solution.timings;
        # record only the remainder as "solve" so the merged breakdown
        # does not double-count (presolve + solve == backend wall time).
        backend_s = time.perf_counter() - t_backend
        recorder.timings.add(
            "solve", max(0.0, backend_s - solution.timings.get("presolve", 0.0))
        )

        if back_map is not None and solution.values is not None:
            solution = solution.restrict(set(self.variables))

        if solution.status is SolveStatus.OPTIMAL and solution.values is not None:
            with recorder.phase("check"):
                violated = self.check_assignment(
                    {v: solution.values[v] for v in self.variables}, tol=1e-5
                )
            if violated:
                raise SolverError(
                    f"solver returned an assignment violating {len(violated)} constraint(s); "
                    f"first: {violated[0]!r}"
                )
        solution.runtime = time.perf_counter() - start
        solution.model_name = self.name
        solution.timings.merge(recorder.timings)
        obs_event("solve_result", model=self.name, solver=solution.solver,
                  status=solution.status.value, objective=solution.objective,
                  runtime=round(solution.runtime, 6))
        if solution.status in (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE,
                               SolveStatus.UNBOUNDED):
            if len(self._solutions) >= 16:
                self._solutions.pop(next(iter(self._solutions)))
            self._solutions[cache_key] = solution.clone()
        return solution

    def _build_warm_start(self, warm_start: Dict[Var, float], back_map,
                          source: str = "warm"):
        """Validate a user assignment and package it for the backends.

        Returns None (warm start silently dropped) when the assignment
        is incomplete or violates any constraint — a bad warm start
        must never be able to corrupt an exact search. Linearization
        product variables are completed from their factors.
        """
        from repro.opt.incremental import WarmStart

        values = dict(warm_start)
        if any(v not in values for v in self.variables):
            return None
        if self.check_assignment(values, tol=1e-6):
            return None
        if back_map:
            for (a, b), z in back_map.items():
                if z not in values:
                    values[z] = values[a] * values[b]
        objective = (self.objective.value(values)
                     if not isinstance(self.objective, (int, float))
                     else float(self.objective))
        return WarmStart(
            {v.name: float(val) for v, val in values.items()},
            objective=float(objective),
            source=source,
        )

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        kind = "MILP" if self.is_linear() else "MIQP"
        return (
            f"Model({self.name!r}, {kind}, vars={self.num_vars}, "
            f"constraints={self.num_constraints})"
        )


__all__ = [
    "Model",
    "Var",
    "VarType",
    "Constraint",
    "Sense",
    "LinExpr",
    "QuadExpr",
    "quicksum",
    "Solution",
    "SolveStatus",
]

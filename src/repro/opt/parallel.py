"""Deterministic multi-process branch-and-bound machinery.

This module is the engine room of the ``parallel_bb`` backend
(:mod:`repro.opt.solvers.parallel_bb`): a coordinator decomposes the
branch-and-bound tree into *subtree tasks* and a pool of worker
processes — each owning a persistent warm
:class:`~repro.opt.incremental.IncrementalLP` — explores them.

Design invariants (the determinism contract, asserted by
``tests/test_parallel_bb.py``):

* **Round-synchronized search.** The coordinator keeps the global
  frontier as a best-first heap keyed ``(bound, seeded path hash,
  path)``. Each round it pops a *fixed-size* batch (independent of the
  worker count), ships every subtree with the incumbent known at round
  start, and merges results at a barrier in sorted-path order. Which
  nodes get explored therefore depends only on the model and the seed —
  never on how many workers ran or which finished first.
* **Node identity is the branch path.** A node is named by the tuple of
  its branch decisions (``var*2 + is_ub`` per level). Ties in the heap
  break on a CRC32 of ``(seed, path)`` — a pure function of identity,
  never of arrival time. The rolling CRC32 over all explored paths is
  reported as the ``node_order_hash`` counter.
* **Deterministic side state.** Pseudo-cost branching statistics are
  snapshotted per round, updated locally inside each task, and merged
  back in sorted-task order; :class:`~repro.opt.presolve.DeltaTightener`
  propagation is a pure function of the bound vectors. Re-running a
  task (after a worker death) reproduces its result bit-for-bit, which
  is what makes SIGKILL recovery safe.

The shared-incumbent channel (a lock-free ``multiprocessing.Value``) is
*written* eagerly by every worker, but in the default deterministic
mode it is only *read* at round boundaries. Passing
``eager_pruning=True`` lets workers also prune against it mid-task —
faster on hard trees, at the price of timing-dependent ``nodes`` /
``lp_calls`` counters (objective and assignment stay exact either way).

Worker IPC is a pair of simplex pipes per worker (no shared queues or
locks), so a SIGKILLed worker is observed as a plain ``EOFError`` on
its result pipe; the coordinator re-queues its in-flight task and
respawns the seat.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import pickle
import signal
import threading
import traceback
import zlib
from collections import deque
from heapq import heappop, heappush
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.deadline import Deadline
from repro.errors import SolverError
from repro.opt.cuts import clique_cuts, cut_rows
from repro.opt.incremental import IncrementalLP
from repro.opt.presolve import DeltaTightener

_INT_TOL = 1e-6

#: Nodes the coordinator expands serially before the first round, so the
#: initial frontier is wide enough to feed every worker.
ROOT_EXPAND_NODES = 32
#: Subtrees dispatched per round. Fixed (not scaled by worker count) —
#: this is what makes the explored node set worker-count independent.
DISPATCH_BATCH = 8
#: Node budget per subtree task; leftovers return to the global frontier.
TASK_NODE_BUDGET = 192
#: Observations per direction before a pseudo-cost is trusted.
PC_RELIABILITY = 1
_PC_EPS = 1e-6

#: Environment override for the multiprocessing start method
#: ("fork"/"spawn"/"forkserver"); auto-selected when unset.
CTX_ENV = "REPRO_PARALLEL_BB_CTX"

Delta = Tuple[int, bool, float]
Path = Tuple[int, ...]


def encode_step(var: int, is_ub: bool) -> int:
    """One branch decision as an int (``var*2 + is_ub``)."""
    return var * 2 + (1 if is_ub else 0)


def path_tie(seed: int, path: Path) -> int:
    """Seeded heap tie-break for a node — a function of identity only."""
    data = np.asarray((seed,) + path, dtype=np.int64).tobytes()
    return zlib.crc32(data)


def fold_hash(acc: int, value: int) -> int:
    """Fold one 32-bit value into a rolling order hash."""
    return zlib.crc32(int(value).to_bytes(8, "little"), acc) & 0xFFFFFFFF


class PseudoCosts:
    """Per-variable branching statistics (objective degradation rates).

    ``dsum``/``dcnt`` accumulate the down-branch degradation per unit of
    fractionality; ``usum``/``ucnt`` the up-branch. Instances are plain
    array quadruples so they snapshot/merge cheaply across processes.
    """

    __slots__ = ("dsum", "dcnt", "usum", "ucnt")

    def __init__(self, n: int) -> None:
        self.dsum = np.zeros(n)
        self.dcnt = np.zeros(n, dtype=np.int64)
        self.usum = np.zeros(n)
        self.ucnt = np.zeros(n, dtype=np.int64)

    def snapshot(self) -> Tuple[np.ndarray, ...]:
        return (self.dsum.copy(), self.dcnt.copy(),
                self.usum.copy(), self.ucnt.copy())

    @classmethod
    def from_arrays(cls, arrays: Sequence[np.ndarray]) -> "PseudoCosts":
        pc = cls(len(arrays[0]))
        pc.dsum, pc.dcnt, pc.usum, pc.ucnt = (np.array(a) for a in arrays)
        return pc

    def merge(self, arrays: Sequence[np.ndarray]) -> None:
        """Add another instance's (delta) arrays into this one."""
        self.dsum += arrays[0]
        self.dcnt += arrays[1]
        self.usum += arrays[2]
        self.ucnt += arrays[3]

    def update(self, j: int, is_up: bool, degradation: float,
               fraction: float) -> None:
        rate = max(degradation, 0.0) / max(fraction, _PC_EPS)
        if is_up:
            self.usum[j] += rate
            self.ucnt[j] += 1
        else:
            self.dsum[j] += rate
            self.dcnt[j] += 1

    def pick(self, x: np.ndarray, branch_idx: np.ndarray,
             extra: Optional["PseudoCosts"] = None) -> Optional[int]:
        """Branch variable for ``x``, or None when integral.

        Uses the product pseudo-cost score over variables whose
        statistics are reliable in both directions; falls back to
        most-fractional otherwise. Ties break on the lowest index (via
        numpy's first-argmax), so the choice is deterministic.
        """
        if branch_idx.size == 0:
            return None
        vals = x[branch_idx]
        frac = np.abs(vals - np.round(vals))
        cand = frac > _INT_TOL
        if not cand.any():
            return None
        dsum, dcnt = self.dsum[branch_idx], self.dcnt[branch_idx]
        usum, ucnt = self.usum[branch_idx], self.ucnt[branch_idx]
        if extra is not None:
            dsum = dsum + extra.dsum[branch_idx]
            dcnt = dcnt + extra.dcnt[branch_idx]
            usum = usum + extra.usum[branch_idx]
            ucnt = ucnt + extra.ucnt[branch_idx]
        reliable = cand & (dcnt >= PC_RELIABILITY) & (ucnt >= PC_RELIABILITY)
        if reliable.any():
            f_down = vals - np.floor(vals)
            with np.errstate(divide="ignore", invalid="ignore"):
                d_avg = np.where(dcnt > 0, dsum / np.maximum(dcnt, 1), 0.0)
                u_avg = np.where(ucnt > 0, usum / np.maximum(ucnt, 1), 0.0)
            score = (np.maximum(d_avg * f_down, _PC_EPS)
                     * np.maximum(u_avg * (1.0 - f_down), _PC_EPS))
            score = np.where(reliable, score, -np.inf)
            return int(branch_idx[int(np.argmax(score))])
        masked = np.where(cand, frac, -np.inf)
        return int(branch_idx[int(np.argmax(masked))])


class SubtreeExplorer:
    """Best-first exploration of one subtree over a warm persistent LP.

    One instance lives for a whole search (per worker, plus one in the
    coordinator): the LP matrix is flattened once, clique cuts added
    once, and every task only replays bound-delta chains.
    """

    def __init__(self, form, *, use_cuts: bool = True, tighten: bool = True,
                 seed: int = 0) -> None:
        self.form = form
        self.seed = seed
        self.lp = IncrementalLP(form)
        self.branch_idx = np.where(form.branch_integrality == 1)[0]
        self.cuts = 0
        if use_cuts:
            cliques = clique_cuts(form)
            if cliques:
                self.lp.add_cuts(*cut_rows(form, cliques))
                self.cuts = len(cliques)
        self.tightener = DeltaTightener(form) if tighten else None

    def run_task(self, chain: Sequence[Delta], path: Path, *,
                 incumbent_val: float = math.inf,
                 node_budget: int = TASK_NODE_BUDGET,
                 pc_arrays: Optional[Sequence[np.ndarray]] = None,
                 mip_gap: float = 1e-9,
                 deadline: Optional[Deadline] = None,
                 shared_best=None,
                 eager: bool = False) -> Dict[str, Any]:
        """Explore the subtree rooted at ``chain``/``path``.

        Deterministic given ``(form, seed, chain, path, incumbent_val,
        node_budget, pc_arrays)`` — the deadline and the shared value
        only ever stop the task early or (in eager mode) prune harder,
        and the default mode ignores both for pruning decisions.
        """
        lp = self.lp
        lp0, it0 = lp.lp_calls, lp.lp_iterations
        pc_base = (PseudoCosts.from_arrays(pc_arrays)
                   if pc_arrays is not None else PseudoCosts(self.form.n))
        pc_delta = PseudoCosts(self.form.n)
        local_inc = float(incumbent_val)
        best_val = math.inf
        best_x: Optional[np.ndarray] = None
        nodes = 0
        tight_prunes = 0
        order = 0
        hit_deadline = False
        leftovers: List[Tuple[float, Path, Tuple[Delta, ...]]] = []

        def cutoff() -> float:
            inc = local_inc
            if eager and shared_best is not None and shared_best.value < inc:
                inc = shared_best.value
            if math.isinf(inc):
                return math.inf
            return inc - mip_gap * max(1.0, abs(inc))

        def broadcast(value: float) -> None:
            # Lock-free write: a lost race only delays pruning, never
            # changes what the deterministic merge will conclude.
            if shared_best is not None and value < shared_best.value:
                shared_best.value = value

        chain = tuple(chain)
        lp.set_bounds(chain)
        res = lp.solve()
        root_status = int(res.status)
        out: Dict[str, Any] = {
            "path": path, "root_status": root_status, "nodes": 0,
            "lp_calls": lp.lp_calls - lp0,
            "lp_iterations": lp.lp_iterations - it0,
            "tight_prunes": 0, "order": 0, "best_val": math.inf,
            "best_x": None, "leftovers": [], "pc": pc_delta.snapshot(),
            "hit_deadline": False,
        }
        if root_status != 0:
            return out

        heap: List[Tuple[float, int, Path, Tuple[Delta, ...], np.ndarray]] = [
            (float(res.fun), path_tie(self.seed, path), path, chain, res.x)
        ]
        while heap:
            bound, tie, pth, chn, x = heappop(heap)
            if bound >= cutoff():
                continue
            if nodes >= node_budget or (deadline is not None
                                        and deadline.expired()):
                hit_deadline = (deadline is not None and deadline.expired())
                leftovers.append((bound, pth, chn))
                leftovers.extend((b, p, c) for b, _, p, c, _ in heap)
                break
            nodes += 1
            order = fold_hash(order, tie)

            j = pc_base.pick(x, self.branch_idx, extra=pc_delta)
            if j is None:
                if bound < best_val:
                    best_val, best_x = bound, x
                    if best_val < local_inc:
                        local_inc = best_val
                        broadcast(best_val)
                continue

            lp.set_bounds(chn)
            xj = x[j]
            f_down = xj - math.floor(xj)
            for direction in ("down", "up"):
                if direction == "down":
                    value, is_ub = float(math.floor(xj)), True
                    if lp.lb[j] > value:
                        continue
                else:
                    value, is_ub = float(math.ceil(xj)), False
                    if value > lp.ub[j]:
                        continue
                extra: List[Delta] = []
                if self.tightener is not None:
                    infeasible, extra = self.tightener.propagate(
                        lp.lb, lp.ub, j, is_ub, value)
                    if infeasible:
                        tight_prunes += 1
                        continue
                child_chain = chn + ((j, is_ub, value),) + tuple(extra)
                lp.set_bounds(child_chain)
                child = lp.solve()
                lp.set_bounds(chn)
                if child.status != 0:
                    continue
                child_bound = float(child.fun)
                pc_delta.update(j, is_ub is False, child_bound - bound,
                                f_down if direction == "down" else 1.0 - f_down)
                child_x = child.x
                if pc_base.pick(child_x, self.branch_idx,
                                extra=pc_delta) is None:
                    if child_bound < best_val:
                        best_val, best_x = child_bound, child_x
                        if best_val < local_inc:
                            local_inc = best_val
                            broadcast(best_val)
                elif child_bound < cutoff():
                    child_path = pth + (encode_step(j, is_ub),)
                    heappush(heap, (child_bound,
                                    path_tie(self.seed, child_path),
                                    child_path, child_chain, child_x))

        out.update(
            nodes=nodes, lp_calls=lp.lp_calls - lp0,
            lp_iterations=lp.lp_iterations - it0,
            tight_prunes=tight_prunes, order=order, best_val=best_val,
            best_x=best_x, leftovers=leftovers, pc=pc_delta.snapshot(),
            hit_deadline=hit_deadline,
        )
        return out


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

def _worker_main(wid: int, payload: bytes, task_r, res_w, shared_best,
                 eager: bool) -> None:
    """Worker entry point: build a warm explorer, then serve tasks.

    When the coordinating process traces, ``cfg["telemetry"]`` turns on
    a worker-local tracer: each task runs inside a ``bb_task`` span
    (stamped with the job's correlation ID) and the resulting telemetry
    batch rides back on the ``result`` message — telemetry never adds
    pipe traffic of its own, and a SIGKILLed worker simply loses its
    unsent batch, never tears one.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    shipper = None
    try:
        cfg = pickle.loads(payload)
        explorer = SubtreeExplorer(
            cfg["form"], use_cuts=cfg["use_cuts"],
            tighten=cfg["tighten"], seed=cfg["seed"])
        if cfg.get("telemetry"):
            from repro.obs.telemetry import TelemetryShipper
            from repro.obs.trace import Tracer, use_tracer

            tracer = Tracer(f"bb-worker-{wid}")
            shipper = TelemetryShipper(tracer, source=f"bb-worker-{wid}")
            install = use_tracer(tracer)
            install.__enter__()  # worker-lifetime install; process exits with it
            if cfg.get("clock"):
                tracer.witness(cfg["clock"])
        res_w.send(("ready", wid))
    except Exception:  # pragma: no cover - construction failures
        try:
            res_w.send(("error", wid, traceback.format_exc()))
        except Exception:
            pass
        return
    from repro.obs.trace import correlate, obs_span

    while True:
        try:
            msg = task_r.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        task = msg[1]
        try:
            with correlate(task.get("corr")), \
                    obs_span("bb_task", worker=wid,
                             depth=len(task["path"])):
                result = explorer.run_task(
                    task["chain"], task["path"],
                    incumbent_val=task["incumbent"],
                    node_budget=task["budget"],
                    pc_arrays=task["pc"],
                    mip_gap=task["mip_gap"],
                    deadline=(Deadline.from_wire(task["deadline"])
                              if task["deadline"] is not None else None),
                    shared_best=shared_best, eager=eager)
            if shipper is not None:
                res_w.send(("result", wid, result, shipper.collect()))
            else:
                res_w.send(("result", wid, result))
        except Exception:
            try:
                res_w.send(("error", wid, traceback.format_exc()))
            except Exception:
                break


def pick_context(name: Optional[str] = None) -> mp.context.BaseContext:
    """The multiprocessing context for the worker pool.

    ``fork`` gives by far the cheapest start (the compiled model and
    scipy are already in memory) but is unsafe under live threads
    (portfolio races members on threads), so it is only auto-picked in
    single-threaded processes. ``REPRO_PARALLEL_BB_CTX`` overrides.
    """
    name = name or os.environ.get(CTX_ENV)
    if name:
        return mp.get_context(name)
    methods = mp.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return mp.get_context("fork")
    return mp.get_context("spawn")


class _Seat:
    """One worker seat: process + its two simplex pipes + in-flight task."""

    __slots__ = ("wid", "proc", "task_w", "res_r", "busy")

    def __init__(self, wid: int, proc, task_w, res_r) -> None:
        self.wid = wid
        self.proc = proc
        self.task_w = task_w
        self.res_r = res_r
        self.busy: Optional[Dict[str, Any]] = None

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()


class WorkerPool:
    """A pool of warm B&B workers with pipe IPC and death recovery.

    ``inline_fn`` is a coordinator-side fallback that runs one dispatch
    dict locally; it is used when every seat is lost, so a round always
    completes with the exact results the workers would have produced.
    """

    def __init__(self, form, workers: int, *, use_cuts: bool = True,
                 tighten: bool = True, seed: int = 0, eager: bool = False,
                 inline_fn: Optional[Callable[[Dict[str, Any]],
                                              Dict[str, Any]]] = None,
                 mp_context: Optional[str] = None, tracer=None,
                 start_timeout: float = 60.0) -> None:
        self.workers = workers
        self._payload = pickle.dumps(
            {"form": form, "use_cuts": use_cuts, "tighten": tighten,
             "seed": seed,
             # Workers trace iff the coordinating process does; their
             # batches ride back on result messages and are absorbed
             # into this tracer (never touching search determinism).
             "telemetry": tracer is not None,
             "clock": getattr(tracer, "clock", 0) if tracer is not None
             else 0},
            protocol=pickle.HIGHEST_PROTOCOL)
        self._eager = eager
        self._inline_fn = inline_fn
        self._tracer = tracer
        self._start_timeout = start_timeout
        self._ctx = pick_context(mp_context)
        self.shared_best = self._ctx.Value("d", math.inf, lock=False)
        self._seats: List[_Seat] = []
        self.steals = 0
        self.restarts = 0

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, wid: int) -> _Seat:
        task_r, task_w = self._ctx.Pipe(duplex=False)
        res_r, res_w = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, self._payload, task_r, res_w, self.shared_best,
                  self._eager),
            daemon=True, name=f"bb-worker-{wid}")
        proc.start()
        task_r.close()
        res_w.close()
        return _Seat(wid, proc, task_w, res_r)

    def _await_ready(self, seat: _Seat, timeout: float) -> bool:
        if not seat.res_r.poll(timeout):
            return False
        try:
            msg = seat.res_r.recv()
        except (EOFError, OSError):
            return False
        if msg[0] == "error":
            raise SolverError(f"parallel_bb worker failed to start:\n{msg[2]}")
        return msg[0] == "ready"

    def start(self) -> bool:
        """Spawn and warm every seat; False means the pool is unusable."""
        try:
            self._seats = [self._spawn(i) for i in range(self.workers)]
            for seat in self._seats:
                if not self._await_ready(seat, self._start_timeout):
                    self.stop()
                    return False
        except SolverError:
            self.stop()
            raise
        except Exception:
            self.stop()
            return False
        return True

    def stop(self) -> None:
        for seat in self._seats:
            if seat.proc is None:
                continue
            try:
                seat.task_w.send(("stop",))
            except Exception:
                pass
        for seat in self._seats:
            if seat.proc is None:
                continue
            seat.proc.join(timeout=0.5)
            if seat.proc.is_alive():
                seat.proc.terminate()
                seat.proc.join(timeout=0.5)
                if seat.proc.is_alive():  # pragma: no cover
                    seat.proc.kill()
                    seat.proc.join(timeout=0.5)
            for conn in (seat.task_w, seat.res_r):
                try:
                    conn.close()
                except Exception:
                    pass
            seat.proc = None
        self._seats = []

    def abort(self) -> None:
        """Hard-stop every worker (cancelled mid-round)."""
        for seat in self._seats:
            if seat.proc is not None and seat.proc.is_alive():
                seat.proc.terminate()
        self.stop()

    # -- death handling ------------------------------------------------
    def _on_death(self, seat: _Seat,
                  pending: "deque[Dict[str, Any]]") -> None:
        if self._tracer is not None:
            self._tracer.event("worker_down", worker=seat.wid,
                               had_task=seat.busy is not None)
        if seat.busy is not None:
            # Re-running a task is deterministic, so re-queueing the
            # exact dispatch dict reproduces the lost result.
            pending.appendleft(seat.busy)
            seat.busy = None
        if seat.proc is not None:
            seat.proc.join(timeout=0.5)
        for conn in (seat.task_w, seat.res_r):
            try:
                conn.close()
            except Exception:
                pass
        seat.proc = None
        try:
            fresh = self._spawn(seat.wid)
            if self._await_ready(fresh, self._start_timeout):
                seat.proc = fresh.proc
                seat.task_w = fresh.task_w
                seat.res_r = fresh.res_r
                self.restarts += 1
                if self._tracer is not None:
                    self._tracer.event("worker_respawned", worker=seat.wid)
        except Exception:  # pragma: no cover - respawn best-effort
            seat.proc = None

    # -- rounds --------------------------------------------------------
    def run_round(self, dispatches: Sequence[Dict[str, Any]], *,
                  kill_wid: Optional[int] = None,
                  cancel_event=None) -> Optional[List[Dict[str, Any]]]:
        """Run one round of subtree tasks; None means cancelled.

        ``kill_wid`` (fault injection) SIGKILLs that seat once it holds
        a task, exercising the re-queue + respawn path deterministically
        from the caller's fault plan.
        """
        pending: "deque[Dict[str, Any]]" = deque(dispatches)
        results: List[Dict[str, Any]] = []
        want = len(pending)
        kill_pending = kill_wid is not None
        while len(results) < want:
            if cancel_event is not None and cancel_event.is_set():
                self.abort()
                return None
            alive = [s for s in self._seats if s.alive]
            if not alive:
                # Every seat lost and respawn failed: finish the round
                # in-process — same tasks, same deterministic results.
                while pending:
                    task = pending.popleft()
                    if self._inline_fn is None:  # pragma: no cover
                        raise SolverError("parallel_bb worker pool lost")
                    results.append(self._inline_fn(task))
                break
            for seat in alive:
                if not pending:
                    break
                if seat.busy is not None:
                    continue
                task = pending.popleft()
                try:
                    seat.task_w.send(("task", task))
                except (BrokenPipeError, OSError):
                    pending.appendleft(task)
                    self._on_death(seat, pending)
                    continue
                seat.busy = task
                if task.get("home") != seat.wid:
                    self.steals += 1
                    if self._tracer is not None:
                        self._tracer.event(
                            "steal", worker=seat.wid, home=task.get("home"),
                            depth=len(task["path"]))
            if kill_pending:
                target = kill_wid % max(len(self._seats), 1)
                victims = [s for s in self._seats
                           if s.alive and s.busy is not None]
                exact = [s for s in victims if s.wid == target]
                if exact:
                    victims = exact
                if victims:
                    os.kill(victims[0].proc.pid, signal.SIGKILL)
                    kill_pending = False
            busy = [s for s in self._seats if s.alive and s.busy is not None]
            if not busy:
                if pending:
                    continue
                break
            ready = _conn_wait([s.res_r for s in busy], timeout=0.1)
            for conn in ready:
                seat = next(s for s in busy if s.res_r is conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError, pickle.UnpicklingError):
                    self._on_death(seat, pending)
                    continue
                if msg[0] == "result":
                    results.append(msg[2])
                    if len(msg) > 3 and self._tracer is not None:
                        self._tracer.absorb_batch(msg[3])
                    seat.busy = None
                elif msg[0] == "error":
                    self.stop()
                    raise SolverError(
                        f"parallel_bb worker {seat.wid} failed:\n{msg[2]}")
        return results

    @property
    def alive_workers(self) -> int:
        return sum(1 for s in self._seats if s.alive)


__all__ = [
    "ROOT_EXPAND_NODES", "DISPATCH_BATCH", "TASK_NODE_BUDGET",
    "PC_RELIABILITY", "CTX_ENV", "encode_step", "path_tie", "fold_hash",
    "PseudoCosts", "SubtreeExplorer", "WorkerPool", "pick_context",
]

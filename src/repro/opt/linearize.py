"""Exact linearization of integer quadratic programs.

The paper formulates switch synthesis as an IQP whose only quadratic
terms are products of binary decision variables (e.g. the
flow-set/path-choice products ``w[i,s] * x[i,d]``). Such products admit
an *exact* linearization with one auxiliary variable per distinct
product:

* ``z = a * b`` with ``a, b`` binary::

      z <= a,   z <= b,   z >= a + b - 1,   z in {0, 1}

* ``z = a * y`` with ``a`` binary and ``y`` a bounded integer
  (``lo <= y <= hi``), the standard big-M form::

      z <= hi * a,          z >= lo * a,
      z <= y - lo * (1-a),  z >= y - hi * (1-a)

Products of two unbounded/continuous variables are rejected — the
library never approximates.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.errors import LinearizationError
from repro.opt.expr import LinExpr, QuadExpr, Sense, Var, VarType
from repro.opt.model import Constraint, Model


def _is_binary(v: Var) -> bool:
    return v.vtype is VarType.BINARY or (
        v.vtype is VarType.INTEGER and v.lb >= 0 and v.ub <= 1
    )


def _is_bounded_integer(v: Var) -> bool:
    return v.vtype in (VarType.INTEGER, VarType.BINARY) and math.isfinite(v.lb) and math.isfinite(v.ub)


def linearize(model: Model) -> Tuple[Model, Dict[Tuple[Var, Var], Var]]:
    """Return an equivalent MILP and the product→auxiliary-variable map.

    The returned model shares the original :class:`Var` objects for all
    original variables, so solutions of the linearized model evaluate
    original expressions directly.
    """
    lin = Model(f"{model.name}_lin")
    # Adopt the original variables wholesale: same objects, same indices.
    lin.variables = list(model.variables)
    lin._names = dict(model._names)
    # Auxiliary variables must continue the index sequence and carry the
    # *linearized* model's ownership checks; reuse the original model id
    # so original Vars and aux Vars can mix inside one expression.
    lin._id = model._id
    # Implied-integer marks carry over; every auxiliary product variable
    # is implied too (its defining rows force z = a*b once the factors
    # are integral), so backends never need to branch on it.
    lin._implied_int_names = set(getattr(model, "_implied_int_names", ()))

    product_vars: Dict[Tuple[Var, Var], Var] = {}

    def aux_for(a: Var, b: Var) -> Var:
        key = (a, b) if a.index <= b.index else (b, a)
        if key in product_vars:
            return product_vars[key]
        a, b = key
        if a is b:
            # a binary squared is itself; bounded-int squares are not needed
            # by the synthesis models and are rejected for safety.
            if _is_binary(a):
                product_vars[key] = a
                return a
            raise LinearizationError(f"cannot linearize square of non-binary {a.name!r}")
        if _is_binary(a) and _is_binary(b):
            z = lin.add_var(f"_lin_{a.name}*{b.name}", VarType.BINARY)
            lin.add_constr(Constraint(z.to_linexpr() - a, Sense.LE), f"_lz1_{z.name}")
            lin.add_constr(Constraint(z.to_linexpr() - b, Sense.LE), f"_lz2_{z.name}")
            lin.add_constr(
                Constraint(z.to_linexpr() - a - b + 1, Sense.GE), f"_lz3_{z.name}"
            )
        else:
            # Ensure `a` is the binary factor.
            if not _is_binary(a):
                a, b = b, a
            if not _is_binary(a) or not _is_bounded_integer(b):
                raise LinearizationError(
                    f"cannot exactly linearize product {a.name!r} * {b.name!r}: "
                    "need binary*binary or binary*bounded-integer"
                )
            lo, hi = b.lb, b.ub
            z = lin.add_var(f"_lin_{a.name}*{b.name}", VarType.INTEGER, min(lo, 0), max(hi, 0))
            lin.add_constr(Constraint(z - hi * a.to_linexpr(), Sense.LE), f"_lz1_{z.name}")
            lin.add_constr(Constraint(z - lo * a.to_linexpr(), Sense.GE), f"_lz2_{z.name}")
            lin.add_constr(
                Constraint(z - (b.to_linexpr() - lo * (1 - a.to_linexpr())), Sense.LE),
                f"_lz3_{z.name}",
            )
            lin.add_constr(
                Constraint(z - (b.to_linexpr() - hi * (1 - a.to_linexpr())), Sense.GE),
                f"_lz4_{z.name}",
            )
        product_vars[key] = z
        lin._implied_int_names.add(z.name)
        return z

    def to_linear(expr) -> LinExpr:
        if isinstance(expr, LinExpr):
            return expr
        assert isinstance(expr, QuadExpr)
        terms: Dict[Var, float] = dict(expr.lin_terms)
        for (a, b), coef in expr.quad_terms.items():
            z = aux_for(a, b)
            terms[z] = terms.get(z, 0.0) + coef
        return LinExpr(terms, expr.constant)

    for c in model.constraints:
        lin.add_constr(Constraint(to_linear(c.expr), c.sense), c.name)

    obj = model.objective
    if isinstance(obj, QuadExpr) and obj.quad_terms:
        lin.set_objective(to_linear(obj), "min" if model.minimize else "max")
    else:
        lin.objective = obj
        lin.minimize = model.minimize

    return lin, product_vars

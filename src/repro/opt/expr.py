"""Algebraic expressions for integer (quadratic) programs.

This module provides the small expression language used to state the
synthesis models: decision variables (:class:`Var`), affine expressions
(:class:`LinExpr`), and quadratic expressions (:class:`QuadExpr`).
Expressions support the natural Python operators, and comparisons
(``<=``, ``>=``, ``==``) produce :class:`Constraint` objects that can be
added to a :class:`repro.opt.model.Model`.

The design mirrors the modeling layers of Gurobi / PuLP so the
constraint code in :mod:`repro.core` reads like the equations in the
paper.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, Mapping, Tuple, Union

from repro.errors import ModelError

Number = Union[int, float]

#: Anything acceptable on either side of an arithmetic operator.
ExprLike = Union["Var", "LinExpr", "QuadExpr", int, float]


class VarType(enum.Enum):
    """Domain of a decision variable."""

    BINARY = "B"
    INTEGER = "I"
    CONTINUOUS = "C"


class Sense(enum.Enum):
    """Direction of a constraint relation."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Var:
    """A single decision variable.

    Variables are created through :meth:`repro.opt.model.Model.add_var`
    (never directly), which assigns the model-unique ``index`` used by
    the solver backends.
    """

    __slots__ = ("name", "vtype", "lb", "ub", "index", "_model_id")

    def __init__(
        self,
        name: str,
        vtype: VarType,
        lb: Number,
        ub: Number,
        index: int,
        model_id: int,
    ) -> None:
        if lb > ub:
            raise ModelError(f"variable {name!r}: lower bound {lb} > upper bound {ub}")
        if vtype is VarType.BINARY and (lb < 0 or ub > 1):
            raise ModelError(f"binary variable {name!r} must have bounds within [0, 1]")
        self.name = name
        self.vtype = vtype
        self.lb = lb
        self.ub = ub
        self.index = index
        self._model_id = model_id

    # -- conversions ---------------------------------------------------
    def to_linexpr(self) -> "LinExpr":
        """Return this variable as a one-term linear expression."""
        return LinExpr({self: 1.0}, 0.0)

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: ExprLike) -> ExprLike:
        return self.to_linexpr() + other

    __radd__ = __add__

    def __sub__(self, other: ExprLike) -> ExprLike:
        return self.to_linexpr() - other

    def __rsub__(self, other: ExprLike) -> ExprLike:
        return (-self.to_linexpr()) + other

    def __neg__(self) -> "LinExpr":
        return LinExpr({self: -1.0}, 0.0)

    def __mul__(self, other: ExprLike) -> ExprLike:
        if isinstance(other, (int, float)):
            return LinExpr({self: float(other)}, 0.0)
        if isinstance(other, Var):
            return QuadExpr({_key(self, other): 1.0}, {}, 0.0)
        if isinstance(other, (LinExpr, QuadExpr)):
            return self.to_linexpr() * other
        return NotImplemented

    __rmul__ = __mul__

    # -- comparisons build constraints ----------------------------------
    def __le__(self, other: ExprLike) -> "Constraint":
        return self.to_linexpr() <= other

    def __ge__(self, other: ExprLike) -> "Constraint":
        return self.to_linexpr() >= other

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (int, float, Var, LinExpr, QuadExpr)):
            return self.to_linexpr() == other
        return NotImplemented

    def __hash__(self) -> int:
        # Identity hash: Var objects are unique per (model, index), and an
        # id-based hash guarantees dict lookups never fall back to __eq__
        # (which builds a Constraint rather than returning a bool).
        return id(self)

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


def _key(a: Var, b: Var) -> Tuple[Var, Var]:
    """Canonical (sorted) key for the product of two variables."""
    return (a, b) if a.index <= b.index else (b, a)


def _as_quad(value: ExprLike) -> "QuadExpr":
    """Coerce any expression-like value into a QuadExpr."""
    if isinstance(value, QuadExpr):
        return value
    if isinstance(value, LinExpr):
        return QuadExpr({}, dict(value.terms), value.constant)
    if isinstance(value, Var):
        return QuadExpr({}, {value: 1.0}, 0.0)
    if isinstance(value, (int, float)):
        return QuadExpr({}, {}, float(value))
    raise TypeError(f"cannot interpret {value!r} as an expression")


def _as_lin(value: ExprLike) -> "LinExpr":
    """Coerce any linear expression-like value into a LinExpr."""
    if isinstance(value, LinExpr):
        return value
    if isinstance(value, Var):
        return value.to_linexpr()
    if isinstance(value, (int, float)):
        return LinExpr({}, float(value))
    if isinstance(value, QuadExpr):
        if value.quad_terms:
            raise ModelError("expression is quadratic where a linear one is required")
        return LinExpr(dict(value.lin_terms), value.constant)
    raise TypeError(f"cannot interpret {value!r} as a linear expression")


class LinExpr:
    """An affine expression ``sum(coef * var) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[Var, float] | None = None, constant: Number = 0.0):
        self.terms: Dict[Var, float] = {v: float(c) for v, c in (terms or {}).items() if c != 0}
        self.constant = float(constant)

    # -- helpers ---------------------------------------------------------
    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    def value(self, assignment: Mapping[Var, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        return self.constant + sum(c * assignment[v] for v, c in self.terms.items())

    def bounds(self) -> Tuple[float, float]:
        """Interval bound of the expression implied by variable bounds."""
        lo = hi = self.constant
        for v, c in self.terms.items():
            if c >= 0:
                lo += c * v.lb
                hi += c * v.ub
            else:
                lo += c * v.ub
                hi += c * v.lb
        return lo, hi

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: ExprLike) -> ExprLike:
        if isinstance(other, (int, float)):
            return LinExpr(dict(self.terms), self.constant + other)
        if isinstance(other, Var):
            other = other.to_linexpr()
        if isinstance(other, LinExpr):
            terms = dict(self.terms)
            for v, c in other.terms.items():
                terms[v] = terms.get(v, 0.0) + c
            return LinExpr(terms, self.constant + other.constant)
        if isinstance(other, QuadExpr):
            return other + self
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: ExprLike) -> ExprLike:
        return self + (-1 * _as_quad(other) if isinstance(other, QuadExpr) else -1 * _as_lin(other))

    def __rsub__(self, other: ExprLike) -> ExprLike:
        return (-1 * self) + other

    def __neg__(self) -> "LinExpr":
        return -1 * self

    def __mul__(self, other: ExprLike) -> ExprLike:
        if isinstance(other, (int, float)):
            return LinExpr({v: c * other for v, c in self.terms.items()}, self.constant * other)
        if isinstance(other, Var):
            other = other.to_linexpr()
        if isinstance(other, LinExpr):
            quad: Dict[Tuple[Var, Var], float] = {}
            lin: Dict[Var, float] = {}
            for va, ca in self.terms.items():
                for vb, cb in other.terms.items():
                    k = _key(va, vb)
                    quad[k] = quad.get(k, 0.0) + ca * cb
                if other.constant:
                    lin[va] = lin.get(va, 0.0) + ca * other.constant
            if self.constant:
                for vb, cb in other.terms.items():
                    lin[vb] = lin.get(vb, 0.0) + cb * self.constant
            return QuadExpr(quad, lin, self.constant * other.constant)
        return NotImplemented

    __rmul__ = __mul__

    # -- comparisons -------------------------------------------------------
    def __le__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - _promote(other), Sense.LE)

    def __ge__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - _promote(other), Sense.GE)

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (int, float, Var, LinExpr, QuadExpr)):
            return Constraint(self - _promote(other), Sense.EQ)
        return NotImplemented

    def __hash__(self) -> int:  # LinExpr is mutable-ish; identity hash is fine
        return id(self)

    def __repr__(self) -> str:
        parts = [f"{c:+g}*{v.name}" for v, c in self.terms.items()]
        parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


class QuadExpr:
    """A quadratic expression: bilinear terms + linear terms + constant."""

    __slots__ = ("quad_terms", "lin_terms", "constant")

    def __init__(
        self,
        quad_terms: Mapping[Tuple[Var, Var], float] | None = None,
        lin_terms: Mapping[Var, float] | None = None,
        constant: Number = 0.0,
    ):
        self.quad_terms: Dict[Tuple[Var, Var], float] = {
            k: float(c) for k, c in (quad_terms or {}).items() if c != 0
        }
        self.lin_terms: Dict[Var, float] = {v: float(c) for v, c in (lin_terms or {}).items() if c != 0}
        self.constant = float(constant)

    def is_linear(self) -> bool:
        return not self.quad_terms

    def value(self, assignment: Mapping[Var, float]) -> float:
        total = self.constant
        total += sum(c * assignment[v] for v, c in self.lin_terms.items())
        total += sum(c * assignment[a] * assignment[b] for (a, b), c in self.quad_terms.items())
        return total

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: ExprLike) -> "QuadExpr":
        other_q = _as_quad(other)
        quad = dict(self.quad_terms)
        for k, c in other_q.quad_terms.items():
            quad[k] = quad.get(k, 0.0) + c
        lin = dict(self.lin_terms)
        for v, c in other_q.lin_terms.items():
            lin[v] = lin.get(v, 0.0) + c
        return QuadExpr(quad, lin, self.constant + other_q.constant)

    __radd__ = __add__

    def __sub__(self, other: ExprLike) -> "QuadExpr":
        return self + (-1 * _as_quad(other))

    def __rsub__(self, other: ExprLike) -> "QuadExpr":
        return (-1 * self) + _as_quad(other)

    def __neg__(self) -> "QuadExpr":
        return -1 * self

    def __mul__(self, other: ExprLike) -> "QuadExpr":
        if not isinstance(other, (int, float)):
            raise ModelError("only scalar multiplication is supported for quadratic expressions")
        return QuadExpr(
            {k: c * other for k, c in self.quad_terms.items()},
            {v: c * other for v, c in self.lin_terms.items()},
            self.constant * other,
        )

    __rmul__ = __mul__

    # -- comparisons ---------------------------------------------------------
    def __le__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - _as_quad(other), Sense.LE)

    def __ge__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - _as_quad(other), Sense.GE)

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (int, float, Var, LinExpr, QuadExpr)):
            return Constraint(self - _as_quad(other), Sense.EQ)
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        q = [f"{c:+g}*{a.name}*{b.name}" for (a, b), c in self.quad_terms.items()]
        l = [f"{c:+g}*{v.name}" for v, c in self.lin_terms.items()]
        return "QuadExpr(" + " ".join(q + l + [f"{self.constant:+g}"]) + ")"


def _promote(value: ExprLike) -> ExprLike:
    """Return value unchanged if it is an expression, else wrap a scalar."""
    if isinstance(value, (int, float)):
        return LinExpr({}, float(value))
    if isinstance(value, Var):
        return value.to_linexpr()
    return value


class Constraint:
    """A relational constraint ``expr (<=|>=|==) 0``.

    The expression is normalized so the right-hand side is zero; the
    original right-hand side constant is folded into ``expr.constant``.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: ExprLike, sense: Sense, name: str = ""):
        if isinstance(expr, Var):
            expr = expr.to_linexpr()
        if not isinstance(expr, (LinExpr, QuadExpr)):
            raise ModelError(f"constraint body must be an expression, got {type(expr)!r}")
        self.expr = expr
        self.sense = sense
        self.name = name

    def is_linear(self) -> bool:
        return isinstance(self.expr, LinExpr) or (
            isinstance(self.expr, QuadExpr) and self.expr.is_linear()
        )

    def satisfied(self, assignment: Mapping[Var, float], tol: float = 1e-6) -> bool:
        """Check the constraint under a complete variable assignment."""
        val = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return val <= tol
        if self.sense is Sense.GE:
            return val >= -tol
        return abs(val) <= tol

    def __repr__(self) -> str:
        return f"Constraint({self.expr!r} {self.sense.value} 0, name={self.name!r})"


def quicksum(items: Iterable[ExprLike]) -> ExprLike:
    """Sum an iterable of expressions efficiently.

    Unlike the builtin :func:`sum`, this accumulates into a single
    mutable term dictionary, avoiding quadratic copying for long sums,
    and returns a :class:`LinExpr` (or :class:`QuadExpr` if any term is
    quadratic). An empty sum yields ``LinExpr() == 0``.
    """
    lin: Dict[Var, float] = {}
    quad: Dict[Tuple[Var, Var], float] = {}
    constant = 0.0
    for item in items:
        if isinstance(item, (int, float)):
            constant += item
        elif isinstance(item, Var):
            lin[item] = lin.get(item, 0.0) + 1.0
        elif isinstance(item, LinExpr):
            for v, c in item.terms.items():
                lin[v] = lin.get(v, 0.0) + c
            constant += item.constant
        elif isinstance(item, QuadExpr):
            for k, c in item.quad_terms.items():
                quad[k] = quad.get(k, 0.0) + c
            for v, c in item.lin_terms.items():
                lin[v] = lin.get(v, 0.0) + c
            constant += item.constant
        else:
            raise TypeError(f"cannot sum {item!r}")
    if quad:
        return QuadExpr(quad, lin, constant)
    return LinExpr(lin, constant)


def is_integral(value: float, tol: float = 1e-6) -> bool:
    """Whether a float is within tolerance of an integer."""
    return abs(value - round(value)) <= tol


def ceil_with_tol(value: float, tol: float = 1e-9) -> int:
    """Ceiling that forgives tiny floating point overshoot."""
    return math.ceil(value - tol)

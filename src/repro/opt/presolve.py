"""Presolve: cheap model reductions before the search.

Three classic, always-safe reductions, iterated to a fixed point:

1. **singleton fixing** — an equality with one variable fixes it;
2. **bound tightening** — every constraint row implies bounds on each
   of its variables given the bounds of the others (for integers the
   implied bounds round inwards);
3. **constraint elimination** — rows whose interval evaluation can
   never be violated are dropped; rows that can never be *satisfied*
   prove infeasibility immediately.

The pass returns a reduced model plus the set of fixed assignments; it
never changes the feasible set. It is used by the built-in
branch-and-bound and backtracking backends (HiGHS has its own presolve)
and is directly useful on the synthesis models, where the coupling
equalities fix large blocks of ``x`` under the fixed binding policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ModelError
from repro.opt.expr import Constraint, LinExpr, QuadExpr, Sense, Var, VarType
from repro.opt.model import Model

_TOL = 1e-9


@dataclass
class PresolveResult:
    """Outcome of a presolve pass."""

    model: Model                      # reduced model (shares Var objects)
    fixed: Dict[Var, float] = field(default_factory=dict)
    proven_infeasible: bool = False
    rounds: int = 0
    dropped_constraints: int = 0

    def extend_solution(self, values: Dict[Var, float]) -> Dict[Var, float]:
        """Add the presolve-fixed variables back into a solution."""
        merged = dict(values)
        merged.update(self.fixed)
        return merged


def _terms(expr) -> Tuple[Dict[Var, float], float]:
    if isinstance(expr, QuadExpr):
        if expr.quad_terms:
            raise ModelError("presolve requires a linear model; linearize first")
        return dict(expr.lin_terms), expr.constant
    return dict(expr.terms), expr.constant


def _is_int(v: Var) -> bool:
    return v.vtype is not VarType.CONTINUOUS


def presolve(model: Model, max_rounds: int = 20) -> PresolveResult:
    """Run the reduction loop on a linear model."""
    lb: Dict[Var, float] = {v: v.lb for v in model.variables}
    ub: Dict[Var, float] = {v: v.ub for v in model.variables}
    rows: List[Tuple[Dict[Var, float], float, Sense, str]] = []
    for c in model.constraints:
        terms, const = _terms(c.expr)
        rows.append((terms, const, c.sense, c.name))

    result = PresolveResult(model=Model(f"{model.name}_presolved"))
    changed = True
    rounds = 0
    while changed and rounds < max_rounds:
        changed = False
        rounds += 1
        survivors = []
        for terms, const, sense, name in rows:
            # substitute variables already fixed to a point
            live: Dict[Var, float] = {}
            base = const
            for v, coef in terms.items():
                if lb[v] == ub[v]:
                    base += coef * lb[v]
                else:
                    live[v] = coef

            lo = base + sum(c * (lb[v] if c >= 0 else ub[v])
                            for v, c in live.items())
            hi = base + sum(c * (ub[v] if c >= 0 else lb[v])
                            for v, c in live.items())

            if _row_infeasible(sense, lo, hi):
                result.proven_infeasible = True
                result.fixed = {v: lb[v] for v in model.variables
                                if lb[v] == ub[v]}
                result.rounds = rounds
                return result
            if _row_redundant(sense, lo, hi):
                result.dropped_constraints += 1
                changed = True
                continue

            # singleton equality fixes its variable
            if sense is Sense.EQ and len(live) == 1:
                (v, coef), = live.items()
                value = -base / coef
                if _is_int(v) and abs(value - round(value)) > 1e-6:
                    result.proven_infeasible = True
                    result.rounds = rounds
                    return result
                value = float(round(value)) if _is_int(v) else value
                if value < lb[v] - _TOL or value > ub[v] + _TOL:
                    result.proven_infeasible = True
                    result.rounds = rounds
                    return result
                lb[v] = ub[v] = value
                changed = True
                result.dropped_constraints += 1
                continue

            # bound tightening on every live variable
            for v, coef in live.items():
                rest_lo = lo - (coef * (lb[v] if coef >= 0 else ub[v]))
                rest_hi = hi - (coef * (ub[v] if coef >= 0 else lb[v]))
                if sense in (Sense.LE, Sense.EQ):
                    # coef*v <= -rest_lo
                    limit = -rest_lo
                    if coef > 0:
                        new_ub = limit / coef
                        if _is_int(v):
                            new_ub = math.floor(new_ub + 1e-9)
                        if new_ub < ub[v] - _TOL:
                            ub[v] = new_ub
                            changed = True
                    else:
                        new_lb = limit / coef
                        if _is_int(v):
                            new_lb = math.ceil(new_lb - 1e-9)
                        if new_lb > lb[v] + _TOL:
                            lb[v] = new_lb
                            changed = True
                if sense in (Sense.GE, Sense.EQ):
                    # coef*v >= -rest_hi
                    limit = -rest_hi
                    if coef > 0:
                        new_lb = limit / coef
                        if _is_int(v):
                            new_lb = math.ceil(new_lb - 1e-9)
                        if new_lb > lb[v] + _TOL:
                            lb[v] = new_lb
                            changed = True
                    else:
                        new_ub = limit / coef
                        if _is_int(v):
                            new_ub = math.floor(new_ub + 1e-9)
                        if new_ub < ub[v] - _TOL:
                            ub[v] = new_ub
                            changed = True
                if lb[v] > ub[v] + _TOL:
                    result.proven_infeasible = True
                    result.rounds = rounds
                    return result
            survivors.append((terms, const, sense, name))
        rows = survivors

    # assemble the reduced model
    reduced = result.model
    keep: Dict[Var, Var] = {}
    for v in model.variables:
        if lb[v] == ub[v]:
            result.fixed[v] = lb[v]
        else:
            nv = reduced.add_var(v.name, v.vtype, lb[v], ub[v])
            keep[v] = nv

    def rebuild(terms: Dict[Var, float], const: float) -> LinExpr:
        out: Dict[Var, float] = {}
        base = const
        for v, coef in terms.items():
            if v in result.fixed:
                base += coef * result.fixed[v]
            else:
                out[keep[v]] = out.get(keep[v], 0.0) + coef
        return LinExpr(out, base)

    for terms, const, sense, name in rows:
        expr = rebuild(terms, const)
        if not expr.terms:
            continue  # fully fixed row; feasibility was checked above
        reduced.add_constr(Constraint(expr, sense), name)

    obj_terms, obj_const = _terms(model.objective)
    reduced.set_objective(rebuild(obj_terms, obj_const),
                          "min" if model.minimize else "max")
    result.rounds = rounds
    return result


def _row_infeasible(sense: Sense, lo: float, hi: float) -> bool:
    if sense is Sense.LE:
        return lo > _TOL
    if sense is Sense.GE:
        return hi < -_TOL
    return lo > _TOL or hi < -_TOL


def _row_redundant(sense: Sense, lo: float, hi: float) -> bool:
    if sense is Sense.LE:
        return hi <= _TOL
    if sense is Sense.GE:
        return lo >= -_TOL
    return abs(lo) <= _TOL and abs(hi) <= _TOL and lo == hi

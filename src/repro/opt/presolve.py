"""Presolve: cheap model reductions before the search.

Three classic, always-safe reductions, iterated to a fixed point:

1. **singleton fixing** — an equality with one variable fixes it;
2. **bound tightening** — every constraint row implies bounds on each
   of its variables given the bounds of the others (for integers the
   implied bounds round inwards);
3. **constraint elimination** — rows whose interval evaluation can
   never be violated are dropped; rows that can never be *satisfied*
   prove infeasibility immediately.

The pass returns a reduced model plus the set of fixed assignments; it
never changes the feasible set. It is used by the built-in
branch-and-bound and backtracking backends (HiGHS has its own presolve)
and is directly useful on the synthesis models, where the coupling
equalities fix large blocks of ``x`` under the fixed binding policy.

The round loop runs on the model's cached sparse compilation
(:mod:`repro.opt.compile`): row activity bounds are two sparse
matrix-vector products and bound tightening is a vectorized
scatter-min/-max over the nonzero entries, so a round costs O(nnz)
numpy work instead of a Python loop over every (row, variable) pair.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.errors import ModelError
from repro.opt.compile import SENSE_EQ, SENSE_GE, SENSE_LE, CompiledModel
from repro.opt.expr import Constraint, LinExpr, Sense, Var
from repro.opt.model import Model

_TOL = 1e-9
_INT_TOL = 1e-6

_SENSE_OF = {SENSE_LE: Sense.LE, SENSE_GE: Sense.GE, SENSE_EQ: Sense.EQ}


@dataclass
class PresolveResult:
    """Outcome of a presolve pass."""

    model: Model                      # reduced model (shares Var objects)
    fixed: Dict[Var, float] = field(default_factory=dict)
    proven_infeasible: bool = False
    rounds: int = 0
    dropped_constraints: int = 0

    def extend_solution(self, values: Dict[Var, float]) -> Dict[Var, float]:
        """Add the presolve-fixed variables back into a solution."""
        merged = dict(values)
        merged.update(self.fixed)
        return merged


def presolve(model: Model, max_rounds: int = 20) -> PresolveResult:
    """Run the reduction loop on a linear model."""
    if not model.is_linear():
        raise ModelError("presolve requires a linear model; linearize first")

    compiled: CompiledModel = model.compiled()
    m, n = compiled.m, compiled.n
    lb = compiled.lb.copy()
    ub = compiled.ub.copy()
    is_int = compiled.integrality.astype(bool)

    result = PresolveResult(model=Model(f"{model.name}_presolved"))
    if n == 0 or m == 0:
        return _assemble(result, model, compiled,
                         np.ones(m, dtype=bool), lb, ub, rounds=0)

    A = compiled.A_csr
    A_csc = A.tocsc()  # column view for the singleton cascade
    # Positive/negative parts share A's sparsity; built once per pass.
    P = A.multiply(A > 0).tocsr()
    N = A.multiply(A < 0).tocsr()
    rows_idx = compiled.a_rows
    cols_idx = compiled.a_cols
    data = compiled.a_data
    senses = compiled.senses
    row_lb = compiled.row_lb
    row_ub = compiled.row_ub
    eq_mask = senses == SENSE_EQ
    has_ub = senses != SENSE_GE       # rows with a finite upper side
    has_lb = senses != SENSE_LE       # rows with a finite lower side

    active = np.ones(m, dtype=bool)
    rounds = 0
    changed = True
    while changed and rounds < max_rounds:
        changed = False
        rounds += 1

        row_min = P @ lb + N @ ub
        row_max = P @ ub + N @ lb

        # 1. rows that can never be satisfied prove infeasibility
        infeasible_rows = active & (
            (row_min > row_ub + _TOL) | (row_max < row_lb - _TOL)
        )
        if infeasible_rows.any():
            return _infeasible(result, compiled, lb, ub, rounds)

        # 2. rows that can never be violated are dropped
        redundant = active & (row_min >= row_lb - _TOL) & (row_max <= row_ub + _TOL)
        if redundant.any():
            active &= ~redundant
            result.dropped_constraints += int(redundant.sum())
            changed = True

        # 3. singleton equalities fix their last live variable. A
        # worklist cascades through equality chains within the round:
        # fixing x in `x + y == c` immediately makes the next link a
        # singleton (the synthesis models' coupling equalities form
        # exactly such chains, fixing whole blocks of ``x``).
        unfixed = lb < ub
        live_entries = unfixed[cols_idx]
        live_count = np.bincount(rows_idx[live_entries], minlength=m)
        queue = deque(np.flatnonzero(active & eq_mask & (live_count == 1)).tolist())
        if queue:
            indptr, indices, adata = A.indptr, A.indices, A.data
            cptr, cind = A_csc.indptr, A_csc.indices
            fixed_any = False
            while queue:
                r = queue.popleft()
                if not active[r]:
                    continue
                sl = slice(indptr[r], indptr[r + 1])
                row_cols = indices[sl]
                row_vals = adata[sl]
                live = unfixed[row_cols]
                if not live.any():
                    # An earlier fix in the cascade emptied the row; it
                    # is now a pure consistency check.
                    total = float(row_vals @ lb[row_cols])
                    if abs(total - compiled.rhs[r]) > _INT_TOL:
                        result.rounds = rounds
                        result.proven_infeasible = True
                        return result
                    active[r] = False
                    result.dropped_constraints += 1
                    changed = True
                    continue
                j = int(row_cols[live][0])
                coef = float(row_vals[live][0])
                base = float(row_vals[~live] @ lb[row_cols[~live]])
                value = (compiled.rhs[r] - base) / coef
                if is_int[j]:
                    if abs(value - round(value)) > _INT_TOL:
                        result.rounds = rounds
                        result.proven_infeasible = True
                        return result
                    value = float(round(value))
                if value < lb[j] - _TOL or value > ub[j] + _TOL:
                    result.rounds = rounds
                    result.proven_infeasible = True
                    return result
                lb[j] = ub[j] = value
                unfixed[j] = False
                active[r] = False
                result.dropped_constraints += 1
                changed = True
                fixed_any = True
                for r2 in cind[cptr[j]:cptr[j + 1]]:
                    live_count[r2] -= 1
                    if active[r2] and eq_mask[r2] and live_count[r2] == 1:
                        queue.append(int(r2))
            if fixed_any:
                # refresh activity bounds so tightening sees the fixes
                row_min = P @ lb + N @ ub
                row_max = P @ ub + N @ lb

        # 4. bound tightening over every nonzero of every active row
        entry_live = active[rows_idx] & unfixed[cols_idx]
        if entry_live.any():
            e_rows = rows_idx[entry_live]
            e_cols = cols_idx[entry_live]
            e_data = data[entry_live]
            pos = e_data > 0
            e_lb = lb[e_cols]
            e_ub = ub[e_cols]
            entry_min = np.where(pos, e_data * e_lb, e_data * e_ub)
            entry_max = np.where(pos, e_data * e_ub, e_data * e_lb)
            rest_min = row_min[e_rows] - entry_min
            rest_max = row_max[e_rows] - entry_max

            new_lb = lb.copy()
            new_ub = ub.copy()

            # upper side: a_rj * x_j <= row_ub[r] - rest_min
            cap = has_ub[e_rows] & np.isfinite(rest_min)
            limit = np.where(cap, row_ub[e_rows] - rest_min, np.inf)
            bound = limit / e_data          # direction depends on the sign
            take = cap & pos
            if take.any():
                _scatter_upper(new_ub, e_cols, bound, take, is_int)
            take = cap & ~pos
            if take.any():
                _scatter_lower(new_lb, e_cols, bound, take, is_int)

            # lower side: a_rj * x_j >= row_lb[r] - rest_max
            cap = has_lb[e_rows] & np.isfinite(rest_max)
            limit = np.where(cap, row_lb[e_rows] - rest_max, -np.inf)
            bound = limit / e_data
            take = cap & pos
            if take.any():
                _scatter_lower(new_lb, e_cols, bound, take, is_int)
            take = cap & ~pos
            if take.any():
                _scatter_upper(new_ub, e_cols, bound, take, is_int)

            tighter_ub = new_ub < ub - _TOL
            tighter_lb = new_lb > lb + _TOL
            if tighter_ub.any() or tighter_lb.any():
                ub[tighter_ub] = new_ub[tighter_ub]
                lb[tighter_lb] = new_lb[tighter_lb]
                changed = True
                if (lb > ub + _TOL).any():
                    result.rounds = rounds
                    result.proven_infeasible = True
                    return result

    return _assemble(result, model, compiled, active, lb, ub, rounds)


class DeltaTightener:
    """Batched bound tightening for one branch delta at a time.

    The branch-and-bound engines change exactly one variable bound per
    child node; re-running the full presolve there would cost O(nnz)
    per node. This helper is built once per compiled model and, given
    the *current node's* working bounds plus one candidate delta,
    propagates only through the rows that contain the branched
    variable — a vectorized slice of the activity-bound arithmetic the
    global presolve runs over the whole matrix.

    Two outcomes, both exact (bound propagation never cuts a feasible
    point):

    * ``infeasible=True`` — some affected row can no longer be
      satisfied; the child can be pruned **without an LP solve**;
    * extra ``(var, is_ub, value)`` deltas — implied integer bounds in
      the affected rows that the child's delta chain can adopt, so the
      LP relaxation starts tighter.

    Everything is a pure function of the bound vectors, so results are
    identical no matter which worker (or how many workers) evaluates a
    node — the property the parallel engine's determinism contract
    leans on.
    """

    def __init__(self, compiled: CompiledModel) -> None:
        A = compiled.A_csr
        self._A = A
        self._P = A.multiply(A > 0).tocsr()
        self._N = A.multiply(A < 0).tocsr()
        self._csc = A.tocsc()
        self._row_lb = compiled.row_lb
        self._row_ub = compiled.row_ub
        self._is_int = compiled.integrality.astype(bool)
        self._n = compiled.n

    def rows_of(self, j: int) -> np.ndarray:
        """Indices of the constraint rows containing variable ``j``."""
        c = self._csc
        return c.indices[c.indptr[j]:c.indptr[j + 1]]

    def propagate(self, lb: np.ndarray, ub: np.ndarray,
                  j: int, is_ub: bool, value: float
                  ) -> Tuple[bool, List[Tuple[int, bool, float]]]:
        """Propagate the delta ``(j, is_ub, value)`` over ``lb``/``ub``.

        ``lb``/``ub`` are the *parent* node's working bounds (read
        only). Returns ``(infeasible, extra_deltas)`` where
        ``extra_deltas`` are implied tightenings valid in the child
        subtree (integer variables only, strict improvements only).
        """
        lbj, ubj = lb[j], ub[j]
        if is_ub:
            ubj = value
        else:
            lbj = value
        if lbj > ubj + _TOL:
            return True, []

        rows = self.rows_of(j)
        if rows.size == 0:
            return False, []

        # Activity bounds of the affected rows under the child bounds.
        # Row slicing keeps this O(nnz of the affected rows).
        P, Nn = self._P[rows], self._N[rows]
        # The child differs from the parent in one coordinate; adjust
        # via rank-1 updates instead of copying the bound vectors.
        row_min = P @ lb + Nn @ ub
        row_max = P @ ub + Nn @ lb
        col = np.asarray(self._A[rows, j].todense()).ravel()
        pos = col > 0
        row_min += np.where(pos, col * (lbj - lb[j]), col * (ubj - ub[j]))
        row_max += np.where(pos, col * (ubj - ub[j]), col * (lbj - lb[j]))

        r_lb = self._row_lb[rows]
        r_ub = self._row_ub[rows]
        if (row_min > r_ub + _TOL).any() or (row_max < r_lb - _TOL).any():
            return True, []

        # Implied bounds for the other variables of the affected rows:
        #   a_rk * x_k <= row_ub[r] - (row_min[r] - entry_min(r, k))
        #   a_rk * x_k >= row_lb[r] - (row_max[r] - entry_max(r, k))
        sub = self._A[rows]
        e_rows_local = np.repeat(np.arange(rows.size), np.diff(sub.indptr))
        e_cols = sub.indices
        e_data = sub.data
        child_lb = lb.copy()
        child_ub = ub.copy()
        child_lb[j], child_ub[j] = lbj, ubj

        epos = e_data > 0
        entry_min = np.where(epos, e_data * child_lb[e_cols],
                             e_data * child_ub[e_cols])
        entry_max = np.where(epos, e_data * child_ub[e_cols],
                             e_data * child_lb[e_cols])
        rest_min = row_min[e_rows_local] - entry_min
        rest_max = row_max[e_rows_local] - entry_max

        new_lb = child_lb.copy()
        new_ub = child_ub.copy()
        cap = np.isfinite(r_ub[e_rows_local]) & np.isfinite(rest_min)
        limit = np.where(cap, r_ub[e_rows_local] - rest_min, np.inf)
        bound = limit / e_data
        take = cap & epos
        if take.any():
            _scatter_upper(new_ub, e_cols, bound, take, self._is_int)
        take = cap & ~epos
        if take.any():
            _scatter_lower(new_lb, e_cols, bound, take, self._is_int)
        cap = np.isfinite(r_lb[e_rows_local]) & np.isfinite(rest_max)
        limit = np.where(cap, r_lb[e_rows_local] - rest_max, -np.inf)
        bound = limit / e_data
        take = cap & epos
        if take.any():
            _scatter_lower(new_lb, e_cols, bound, take, self._is_int)
        take = cap & ~epos
        if take.any():
            _scatter_upper(new_ub, e_cols, bound, take, self._is_int)

        if (new_lb > new_ub + _TOL).any():
            return True, []

        # Only *strict integer* improvements become chain deltas: they
        # shrink the child's search space at zero LP cost, and keeping
        # continuous bounds out of the chain keeps chains short.
        deltas: List[Tuple[int, bool, float]] = []
        better_ub = self._is_int & (new_ub < child_ub - _INT_TOL)
        better_lb = self._is_int & (new_lb > child_lb + _INT_TOL)
        for k in np.flatnonzero(better_ub):
            if k != j:
                deltas.append((int(k), True, float(new_ub[k])))
        for k in np.flatnonzero(better_lb):
            if k != j:
                deltas.append((int(k), False, float(new_lb[k])))
        return False, deltas


def _scatter_upper(new_ub: np.ndarray, cols: np.ndarray, bound: np.ndarray,
                   take: np.ndarray, is_int: np.ndarray) -> None:
    b = bound[take]
    c = cols[take]
    rounded = np.where(is_int[c], np.floor(b + _TOL), b)
    np.minimum.at(new_ub, c, rounded)


def _scatter_lower(new_lb: np.ndarray, cols: np.ndarray, bound: np.ndarray,
                   take: np.ndarray, is_int: np.ndarray) -> None:
    b = bound[take]
    c = cols[take]
    rounded = np.where(is_int[c], np.ceil(b - _TOL), b)
    np.maximum.at(new_lb, c, rounded)


def _infeasible(result: PresolveResult, compiled: CompiledModel,
                lb: np.ndarray, ub: np.ndarray, rounds: int) -> PresolveResult:
    result.proven_infeasible = True
    result.rounds = rounds
    result.fixed = {
        v: float(lb[v.index])
        for v in compiled.variables
        if lb[v.index] == ub[v.index]
    }
    return result


def _assemble(result: PresolveResult, model: Model, compiled: CompiledModel,
              active: np.ndarray, lb: np.ndarray, ub: np.ndarray,
              rounds: int) -> PresolveResult:
    """Build the reduced model from the final bounds and surviving rows."""
    reduced = result.model
    keep: Dict[Var, Var] = {}
    for v in compiled.variables:
        if lb[v.index] == ub[v.index]:
            result.fixed[v] = float(lb[v.index])
        else:
            keep[v] = reduced.add_var(v.name, v.vtype,
                                      float(lb[v.index]), float(ub[v.index]))
    implied = getattr(model, "_implied_int_names", None)
    if implied:
        reduced._implied_int_names = {v.name for v in keep if v.name in implied}

    A = compiled.A_csr
    indptr, indices, adata = A.indptr, A.indices, A.data
    for r in np.flatnonzero(active):
        terms: Dict[Var, float] = {}
        base = -float(compiled.rhs[r])
        for j, coef in zip(indices[indptr[r]:indptr[r + 1]],
                           adata[indptr[r]:indptr[r + 1]]):
            v = compiled.variables[j]
            if v in result.fixed:
                base += coef * result.fixed[v]
            else:
                terms[keep[v]] = terms.get(keep[v], 0.0) + float(coef)
        if not terms:
            continue  # fully fixed row; feasibility was checked above
        reduced.add_constr(
            Constraint(LinExpr(terms, base), _SENSE_OF[int(compiled.senses[r])]),
            compiled.row_names[r],
        )

    obj_terms: Dict[Var, float] = {}
    obj_const = compiled.obj_offset
    # compiled.c is sign-flipped for maximization; undo it here.
    c = compiled.c if compiled.minimize else -compiled.c
    for j in np.flatnonzero(c):
        v = compiled.variables[j]
        if v in result.fixed:
            obj_const += c[j] * result.fixed[v]
        else:
            obj_terms[keep[v]] = float(c[j])
    reduced.set_objective(LinExpr(obj_terms, obj_const),
                          "min" if compiled.minimize else "max")
    result.rounds = rounds
    return result

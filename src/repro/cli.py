"""Command-line interface.

::

    python -m repro cases                       # list built-in cases
    python -m repro show-switch 8               # print switch structure
    python -m repro synthesize chip_sw1 --policy fixed --svg out.svg
    python -m repro synthesize my_case.json --json result.json
    python -m repro export-case chip_sw1 --policy fixed -o case.json
    python -m repro compare nucleic_acid        # vs spine / GRU baselines
    python -m repro synthesize chip_sw1 --trace run.jsonl
    python -m repro obs summarize run.jsonl --validate
    python -m repro obs timeline run.jsonl --svg timeline.svg
    python -m repro synthesize chip_sw1 --store ~/.cache/repro-store
    python -m repro cache stats --store ~/.cache/repro-store
    python -m repro cache gc --store ~/.cache/repro-store --max-bytes 100000000
    python -m repro cache verify --store ~/.cache/repro-store
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.analysis import compare_designs, format_table
from repro.cases import CASE_REGISTRY
from repro.core import BindingPolicy, SwitchSpec, SynthesisOptions, synthesize
from repro.errors import ReproError
from repro.io import load_spec, save_result, save_spec
from repro.render import render_result, render_switch, save_svg
from repro.switches import CrossbarSwitch


def _resolve_spec(target: str, policy: Optional[str]) -> SwitchSpec:
    """A case name from the registry, or a path to a JSON spec."""
    if target in CASE_REGISTRY:
        binding = BindingPolicy(policy) if policy else BindingPolicy.UNFIXED
        return CASE_REGISTRY[target](binding)
    path = Path(target)
    if path.exists():
        spec = load_spec(path)
        if policy:
            raise ReproError(
                "--policy applies to registry cases only; edit the JSON's "
                "'binding' field instead"
            )
        return spec
    raise ReproError(
        f"unknown case {target!r}: not in the registry "
        f"({', '.join(sorted(CASE_REGISTRY))}) and not a file"
    )


def cmd_cases(args: argparse.Namespace) -> int:
    rows = []
    for name, factory in sorted(CASE_REGISTRY.items()):
        spec = factory(BindingPolicy.UNFIXED)
        rows.append({
            "case": name,
            "#m": len(spec.modules),
            "#flows": len(spec.flows),
            "#conflicts": len(spec.conflicts),
            "switch": spec.switch.size_label,
        })
    print(format_table(rows))
    return 0


def cmd_show_switch(args: argparse.Namespace) -> int:
    if args.fpva:
        from repro.switches import make_fpva

        rows_text, sep, cols_text = args.fpva.partition("x")
        if not sep:
            raise ReproError(
                f"bad --fpva {args.fpva!r}: expected ROWSxCOLS, e.g. 3x4")
        try:
            switch = make_fpva(int(rows_text), int(cols_text))
        except ValueError:
            raise ReproError(
                f"bad --fpva {args.fpva!r}: expected ROWSxCOLS, "
                f"e.g. 3x4") from None
    elif args.pins is None:
        raise ReproError("show-switch needs a pin count or --fpva ROWSxCOLS")
    else:
        switch = CrossbarSwitch(args.pins)
    print(f"{switch.name}: {switch.n_pins} pins, {len(switch.nodes)} nodes, "
          f"{len(switch.segments)} segments, "
          f"total L={switch.total_length():.1f} mm")
    print("pins (clockwise):", ", ".join(switch.pins))
    print("nodes:", ", ".join(switch.nodes))
    if args.svg:
        save_svg(render_switch(switch), args.svg)
        print(f"structure rendered to {args.svg}")
    return 0


def _export_trace(tracer, spec: SwitchSpec, options: SynthesisOptions,
                  path: str, fmt: str) -> None:
    """Write the recorded trace in the requested format(s)."""
    from repro.obs import run_manifest, write_chrome_trace, write_trace_jsonl

    manifest = run_manifest(spec, options)
    base = Path(path)
    if fmt in ("jsonl", "both"):
        jsonl_path = base if fmt == "jsonl" else base.with_suffix(".jsonl")
        write_trace_jsonl(tracer, jsonl_path, manifest=manifest)
        print(f"trace written to {jsonl_path}")
    if fmt in ("chrome", "both"):
        chrome_path = (base if fmt == "chrome"
                       else base.with_suffix(".chrome.json"))
        write_chrome_trace(tracer, chrome_path, manifest=manifest)
        print(f"chrome trace written to {chrome_path} "
              "(load in Perfetto / chrome://tracing)")


def _cli_store(args: argparse.Namespace, required: bool = False):
    """The store named by ``--store`` (or ``REPRO_STORE``), or None."""
    from repro.store import Store, active_store

    path = getattr(args, "store", None)
    if path:
        return Store(path)
    store = active_store()
    if store is None and required:
        raise ReproError(
            "no store given: pass --store PATH or export REPRO_STORE")
    return store


def cmd_synthesize(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args.case, args.policy)
    if args.faults:
        from repro.repair import mask_spec, parse_faults

        spec = mask_spec(spec, parse_faults(args.faults))
        print(f"masked {len(spec.switch.health.dead_segments)} faulty "
              f"segment(s); synthesizing on the degraded switch")
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer(spec.name)
    backend = args.backend
    if getattr(args, "workers", None):
        if backend != "parallel_bb":
            print("error: --workers only applies to --backend parallel_bb",
                  file=sys.stderr)
            return 2
        backend = f"parallel_bb:{args.workers}"
    options = SynthesisOptions(
        backend=backend,
        time_limit=args.time_limit,
        pressure_method=args.pressure,
        on_error=args.on_error,
        trace=tracer,
        store=_cli_store(args),
        cache=not args.no_cache,
    )
    print(f"synthesizing {spec.summary()} ...")
    result = synthesize(spec, options)
    if result.counters.get("store_hit"):
        print("(answered from the persistent store; re-verified)")
    if tracer is not None:
        _export_trace(tracer, spec, options, args.trace, args.trace_format)
    print(format_table([result.table_row()]))
    if result.counters.get("degraded"):
        print(f"note: exact solve failed ({result.error}); "
              "degraded to the validated greedy solution")
    elif result.error:
        print(f"note: {result.error}")
    if result.counters.get("pressure_degraded"):
        print("note: pressure-sharing ILP ran out of budget; "
              "greedy clique cover substituted")
    if args.profile and result.timings:
        from repro.perf import format_phase_table

        print("phase breakdown:")
        print(format_phase_table(result.timings))
    if not result.status.solved:
        return 1
    print(f"binding: {result.binding}")
    for fid, path in sorted(result.flow_paths.items()):
        print(f"  flow {fid} (set {result.set_of_flow(fid)}): {path}")
    if result.pressure:
        print(f"control inlets after pressure sharing: "
              f"{result.pressure.num_control_inlets}")
    if args.svg:
        save_svg(render_result(result), args.svg)
        print(f"layout rendered to {args.svg}")
    if args.json:
        save_result(result, args.json)
        print(f"result written to {args.json}")
    return 0


def cmd_repair(args: argparse.Namespace) -> int:
    """Synthesize, strike the given faults mid-campaign, self-heal.

    The full closed loop on one chip: healthy synthesis, a simulated
    campaign under the fault plan (detection), then incremental
    re-synthesis on the masked switch seeded from the surviving paths.
    Exit 0 when the repair re-solves exactly, 3 when it fell down the
    degradation ladder to the greedy rung, 1 when it failed outright.
    """
    from repro.repair import detect_faults, parse_faults, repair

    spec = _resolve_spec(args.case, args.policy)
    faults = parse_faults(args.faults)
    backend = args.backend
    if getattr(args, "workers", None):
        if backend != "parallel_bb":
            print("error: --workers only applies to --backend parallel_bb",
                  file=sys.stderr)
            return 2
        backend = f"parallel_bb:{args.workers}"
    options = SynthesisOptions(
        backend=backend,
        time_limit=args.time_limit,
        on_error=args.on_error,
        store=_cli_store(args),
    )
    print(f"synthesizing healthy baseline for {spec.summary()} ...")
    prior = synthesize(spec, options)
    if not prior.status.solved:
        print(f"{spec.name}: healthy synthesis {prior.status.value}; "
              "nothing to repair")
        return 1
    detection = detect_faults(prior, faults)
    print(f"detection: {detection.summary()}")
    if not detection.detected:
        print("note: faults are benign for this routing; masking them "
              "out of the catalog anyway")
    outcome = repair(prior, faults, options)
    print(outcome.summary())
    if outcome.reachability.dead_pins:
        print("note: mask strands pin(s) "
              + ", ".join(outcome.reachability.dead_pins))
    rows = [dict(prior.table_row(), case=f"{spec.name} (healthy)"),
            dict(outcome.repaired.table_row(),
                 case=f"{spec.name} (repaired)")]
    print(format_table(rows))
    if not outcome.solved:
        print(f"repair failed: {outcome.repaired.error}")
        return 1
    for fid, path in sorted(outcome.repaired.flow_paths.items()):
        marker = "=" if fid in outcome.surviving_flows else "~"
        print(f"  flow {fid} {marker} {path}")
    if args.json:
        save_result(outcome.repaired, args.json)
        print(f"repaired result written to {args.json}")
    if args.svg:
        save_svg(render_result(outcome.repaired), args.svg)
        print(f"repaired layout rendered to {args.svg}")
    return 3 if outcome.degraded else 0


def cmd_export_case(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args.case, args.policy)
    save_spec(spec, args.output)
    print(f"spec written to {args.output}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args.case, args.policy)
    comparison = compare_designs(
        spec, SynthesisOptions(time_limit=args.time_limit)
    )
    print(format_table(comparison.rows()))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim import estimate_execution_time, simulate, stuck_open

    spec = _resolve_spec(args.case, args.policy)
    result = synthesize(spec, SynthesisOptions(time_limit=args.time_limit))
    if not result.status.solved:
        print(f"{spec.name}: {result.status.value}")
        return 1
    report = simulate(result)
    print(f"{spec.name}: {report.summary()}")
    print(f"estimated routing time: "
          f"{estimate_execution_time(result).summary()}")
    if args.faults and result.valves.essential:
        print("\nstuck-open fault sweep over essential valves:")
        for key in sorted(result.valves.essential):
            faulty = simulate(result, faults=[stuck_open(*key)])
            verdict = "clean" if faulty.is_clean else faulty.summary()
            print(f"  {key[0]}-{key[1]}: {verdict}")
    return 0 if report.is_clean else 1


def cmd_layout(args: argparse.Namespace) -> int:
    from repro.chip import chip_layout
    from repro.render import render_chip

    spec = _resolve_spec(args.case, args.policy)
    result = synthesize(spec, SynthesisOptions(time_limit=args.time_limit))
    if not result.status.solved:
        print(f"{spec.name}: {result.status.value}")
        return 1
    layout = chip_layout(result)
    print(f"{spec.name}: {layout.summary()}")
    if args.svg:
        save_svg(render_chip(layout, result), args.svg)
        print(f"chip layout rendered to {args.svg}")
    return 0


def _service_options(args: argparse.Namespace) -> SynthesisOptions:
    return SynthesisOptions(time_limit=args.time_limit,
                            on_error=args.on_error)


def _serve_http(args: argparse.Namespace) -> int:
    """``repro serve --http``: the sharded network-facing platform.

    ``--journal`` names a *directory* here — each of the ``--shards``
    worker processes keeps its own ``shard-<i>.jsonl`` write-ahead
    journal inside it, so a SIGKILLed shard replays exactly its own
    work when the coordinator respawns it. The first line printed is
    ``serving: http://HOST:PORT ...`` (flushed), so scripts can bind
    port 0 and scrape the ephemeral port.
    """
    import signal as _signal
    import threading

    from repro.io import spec_to_dict
    from repro.service import (ServiceHTTPServer, ShardCoordinator,
                               options_to_dict, replay_journal)

    specs = [_resolve_spec(target, args.policy) for target in args.spec]
    options = _service_options(args)
    trace_dir = None
    if args.trace:
        from pathlib import Path

        trace_dir = str(Path(args.trace).parent) if Path(args.trace).suffix \
            else args.trace
    coordinator = ShardCoordinator(
        args.journal,
        shards=args.shards,
        workers=args.workers,
        queue_size=args.queue_size,
        options=options_to_dict(options),
        backends=args.backends.split(",") if args.backends else None,
        max_attempts=args.max_attempts,
        store=_cli_store(args),
        tenant_quota=args.tenant_quota,
        trace_dir=trace_dir,
    )
    stop_requested = threading.Event()
    for signum in (_signal.SIGINT, _signal.SIGTERM):
        _signal.signal(signum, lambda *_: stop_requested.set())
    with coordinator:
        for spec in specs:
            coordinator.submit(spec_to_dict(spec))
        with ServiceHTTPServer(coordinator, port=args.http) as server:
            print(f"serving: {server.url} ({args.shards} shard(s) x "
                  f"{args.workers} worker(s), journals in {args.journal})",
                  flush=True)
            stop_requested.wait()
        print(f"shutdown requested; draining in-flight jobs "
              f"(deadline {args.drain_timeout}s) ...")
        coordinator.stop(drain="inflight", deadline=args.drain_timeout)
    # The shards are gone; the journals are the ground truth now.
    states: dict = {}
    from pathlib import Path

    for path in sorted(Path(args.journal).glob("shard-*.jsonl")):
        for job in replay_journal(path).jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
    print("platform stopped: "
          + (", ".join(f"{k}={v}" for k, v in sorted(states.items()))
             or "no jobs"))
    pending = sum(count for state, count in states.items()
                  if state not in ("done", "degraded", "failed"))
    if pending:
        print(f"{pending} job(s) left journaled; re-run "
              f"`repro serve --http {args.http} --journal {args.journal}` "
              f"to finish")
        return 3
    return 1 if states.get("failed") else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the supervised job service over a write-ahead journal.

    Jobs come from the positional specs (if any) plus whatever pending
    work the journal replays from a previous — possibly killed — run.
    SIGINT/SIGTERM drain in-flight jobs under ``--drain-timeout``; the
    rest stays journaled for the next ``repro serve``. With ``--http``
    the same core runs sharded across processes behind an HTTP API —
    see :func:`_serve_http`.
    """
    from repro.service import SynthesisService, install_signal_handlers

    if args.http is not None:
        return _serve_http(args)

    specs = [_resolve_spec(target, args.policy) for target in args.spec]
    tracer = None
    if args.trace:
        from repro.obs import Tracer, use_tracer

        tracer = Tracer("serve")
    options = _service_options(args)
    service = SynthesisService(
        args.journal,
        workers=args.workers,
        queue_size=args.queue_size,
        options=options,
        backends=args.backends.split(",") if args.backends else None,
        max_attempts=args.max_attempts,
        store=_cli_store(args),
    )
    install_signal_handlers(service)

    def run() -> int:
        service.start()
        for spec in specs:
            service.submit(spec)
        health = service.health()
        print(f"serving: {health['outstanding']} job(s) outstanding, "
              f"{args.workers} worker(s), journal {args.journal}")
        outcome = service.run_until_complete()
        if outcome == "interrupted":
            print("shutdown requested; draining in-flight jobs "
                  f"(deadline {args.drain_timeout}s) ...")
        # An interrupt finishes only what is already on a worker —
        # queued jobs stay journaled for the next `repro serve`.
        drain = "inflight" if outcome == "interrupted" else True
        summary = service.stop(drain=drain, deadline=args.drain_timeout)
        states = service.stats()["jobs"]
        print("service stopped: "
              + ", ".join(f"{k}={v}" for k, v in sorted(states.items())))
        if summary["pending"]:
            print(f"{summary['pending']} job(s) left journaled as pending; "
                  f"re-run `repro serve --journal {args.journal}` to finish")
            return 3
        return 1 if states.get("failed") else 0

    if tracer is not None:
        from repro.obs import use_tracer

        with use_tracer(tracer):
            code = run()
        from repro.obs import run_manifest, write_trace_jsonl

        write_trace_jsonl(tracer, args.trace,
                          manifest=run_manifest(None, options))
        print(f"trace written to {args.trace}")
        return code
    return run()


def _submit_url(args: argparse.Namespace) -> int:
    """``repro submit --url``: hand the job to a running platform."""
    from repro.io import spec_to_dict
    from repro.service import HTTPServiceError, submit_job, wait_job
    from repro.service.journal import TERMINAL_STATES

    spec = _resolve_spec(args.case, args.policy)
    try:
        job = submit_job(args.url, spec_to_dict(spec),
                         tenant=args.tenant, priority=args.priority)
    except HTTPServiceError as exc:
        kind = "shed" if exc.status == 429 else "rejected"
        print(f"submission {kind} ({exc.status}): {exc}")
        return 1
    print(f"job {job['id']}: {job['state']} (shard {job.get('shard')})")
    if not args.wait:
        return 0
    if job["state"] not in TERMINAL_STATES:
        job = wait_job(args.url, job["id"], timeout=args.timeout)
    print(f"job {job['id']}: {job['state']} "
          f"(attempts {job.get('attempts', 0)})")
    if job.get("row"):
        print(format_table([{k: v for k, v in job["row"].items()
                             if v not in (None, "")}]))
    if job["state"] not in TERMINAL_STATES:
        print(f"job {job['id']} still {job['state']} after "
              f"{args.timeout}s; it stays journaled on the platform")
        return 3
    return 0 if job["state"] in ("done", "degraded") else 1


def cmd_submit(args: argparse.Namespace) -> int:
    """Journal one job; with ``--wait``, also drain the journal and
    print the job's terminal row.

    Exit codes mirror ``repro serve``: 0 done/degraded, 1 failed,
    3 when the job is left journaled but not terminal (interrupted
    while waiting, or ``--url --wait`` timed out).
    """
    from repro.io import spec_to_dict
    from repro.service import (Journal, JobRecord, SynthesisService,
                               install_signal_handlers, job_id_for,
                               options_to_dict)

    if (args.url is None) == (args.journal is None):
        print("submit needs exactly one of --journal or --url")
        return 2
    if args.url is not None:
        return _submit_url(args)
    spec = _resolve_spec(args.case, args.policy)
    options = _service_options(args)
    job_id = job_id_for(spec, options)
    if not args.wait:
        with Journal(args.journal) as journal:
            existing = journal.jobs.get(job_id)
            if existing is not None:
                print(f"job {job_id} already journaled "
                      f"(state {existing.state})")
            else:
                journal.record_job(JobRecord(
                    job_id, spec_to_dict(spec), options_to_dict(options)))
                print(f"job {job_id} journaled as submitted; "
                      f"run `repro serve --journal {args.journal}` to "
                      f"execute it")
        return 0
    # Signal-aware wait: an interrupt drains in-flight work and leaves
    # the rest journaled — exit 3 says "pending, resumable", the same
    # contract as `repro serve` (see docs/service.md).
    service = SynthesisService(args.journal, workers=args.workers,
                               options=options, store=_cli_store(args))
    install_signal_handlers(service)
    service.start()
    service.submit(spec, options, tenant=args.tenant,
                   priority=args.priority)
    print(f"waiting: job {job_id} (journal {args.journal})", flush=True)
    outcome = service.run_until_complete()
    if outcome == "interrupted":
        print("interrupt: draining in-flight jobs; the rest stays "
              f"journaled in {args.journal}")
    service.stop(drain="inflight" if outcome == "interrupted" else True,
                 deadline=args.drain_timeout)
    record = service.job(job_id)
    print(f"job {job_id}: {record.state} "
          f"(attempts {record.attempts})")
    if record.row:
        print(format_table([{k: v for k, v in record.row.items()
                             if v not in (None, "")}]))
    if not record.terminal:
        print(f"job {job_id} left journaled as {record.state}; re-run "
              f"`repro submit {args.case} --journal {args.journal} --wait` "
              f"or `repro serve --journal {args.journal}` to finish")
        return 3
    return 0 if record.state in ("done", "degraded") else 1


def cmd_cache_stats(args: argparse.Namespace) -> int:
    stats = _cli_store(args, required=True).stats()
    print(f"store {stats['root']}: {stats['entries']} entries, "
          f"{stats['bytes']} bytes"
          + (f" (cap {stats['max_bytes']})" if stats["max_bytes"] else ""))
    print(f"salt: {stats['salt']}")
    for kind, count in stats["by_kind"].items():
        print(f"  {kind}: {count}")
    counters = {k: v for k, v in stats["counters"].items() if v}
    if counters:
        print("this process: "
              + ", ".join(f"{k}={v}" for k, v in sorted(counters.items())))
    return 0


def cmd_cache_gc(args: argparse.Namespace) -> int:
    store = _cli_store(args, required=True)
    report = store.gc(max_bytes=args.max_bytes)
    print(f"gc: evicted {report['evicted']} entries "
          f"({report['freed_bytes']} bytes); kept {report['kept']} "
          f"({report['kept_bytes']} bytes)")
    if args.max_bytes is None and store.max_bytes is None:
        print("note: no byte cap given (--max-bytes); nothing to evict")
    return 0


def cmd_cache_verify(args: argparse.Namespace) -> int:
    report = _cli_store(args, required=True).verify(repair=not args.no_repair)
    print(f"verify: {report['valid']}/{report['checked']} entries valid")
    for item in report["invalid"]:
        action = "kept" if args.no_repair else "removed"
        print(f"  {item['key'][:16]}...: {item['problem']} ({action})")
    return 1 if report["invalid"] else 0


def cmd_obs_summarize(args: argparse.Namespace) -> int:
    from repro.obs import (format_summary, read_trace_jsonl,
                           validate_trace_records)

    data = read_trace_jsonl(args.trace)
    if args.validate:
        validate_trace_records(data.records)
        print(f"{args.trace}: schema valid "
              f"({len(data.records)} records)")
    print(format_summary(data))
    return 0


def cmd_obs_top(args: argparse.Namespace) -> int:
    """``repro obs top --url``: live view of a running HTTP platform.

    Polls ``GET /stats`` and ``GET /metrics`` and renders a compact
    refresh-in-place dashboard.  ``--iterations`` bounds the loop (0
    means run until interrupted), so scripts and tests can take a
    single snapshot with ``--iterations 1``.
    """
    import json as _json
    import time as _time
    from urllib.request import urlopen

    from repro.service import fetch_metrics

    base = args.url.rstrip("/")

    def snapshot() -> str:
        with urlopen(f"{base}/stats", timeout=30.0) as resp:
            stats = _json.loads(resp.read().decode("utf-8"))
        lines = [f"platform {base}"]
        jobs = stats.get("jobs") or {}
        lines.append("  jobs:    "
                     + (", ".join(f"{k}={v}" for k, v in sorted(jobs.items()))
                        or "none"))
        lines.append(f"  queue:   depth={stats.get('queue_depth', 0)} "
                     f"high-water={stats.get('queue_depth_max', 0)} "
                     f"in-flight={stats.get('in_flight', 0)} "
                     f"shed={stats.get('shed', 0)}")
        shards = stats.get("shards") or {}
        running = sum(1 for s in shards.values()
                      if s.get("state") == "running")
        lines.append(f"  shards:  {running}/{len(shards)} running "
                     f"restarts={stats.get('restarts', 0)} "
                     f"worker-crashes={stats.get('worker_crashes', 0)}")
        tele = stats.get("telemetry") or {}
        lines.append(f"  streams: {tele.get('sources', 0)} source(s), "
                     f"dropped={tele.get('dropped', 0)}, "
                     f"rejected={tele.get('rejected', 0)}")
        for name, hist in sorted((stats.get("latency") or {}).items()):
            count = hist.get("count", 0)
            mean = hist.get("sum", 0.0) / count if count else 0.0
            lines.append(f"  {name}: n={count} mean={mean:.3f}s "
                         f"max={hist.get('max', 0.0):.3f}s")
        counters = []
        for line in fetch_metrics(base).splitlines():
            if line.startswith("#") or not line.strip():
                continue
            name = line.split("{", 1)[0].split(" ", 1)[0]
            if name.startswith(("solver_", "store_", "service_jobs_")):
                counters.append(line)
        if counters:
            lines.append("  metrics:")
            lines.extend(f"    {line}" for line in counters[:args.rows])
            if len(counters) > args.rows:
                lines.append(f"    ... {len(counters) - args.rows} more "
                             f"(see GET /metrics)")
        return "\n".join(lines)

    iteration = 0
    prev_lines = 0
    try:
        while True:
            text = snapshot()
            if prev_lines and sys.stdout.isatty():
                # Crawl back over the previous frame so the dashboard
                # refreshes in place instead of scrolling.
                print(f"\x1b[{prev_lines}A\x1b[J", end="")
            print(text, flush=True)
            prev_lines = text.count("\n") + 1
            iteration += 1
            if args.iterations and iteration >= args.iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_obs_compare(args: argparse.Namespace) -> int:
    from repro.obs import format_comparison, read_trace_jsonl

    a = read_trace_jsonl(args.trace_a)
    b = read_trace_jsonl(args.trace_b)
    print(format_comparison(a, b))
    return 0


def cmd_obs_timeline(args: argparse.Namespace) -> int:
    from repro.obs import ascii_timeline, read_trace_jsonl

    data = read_trace_jsonl(args.trace)
    print(ascii_timeline(data))
    if args.svg:
        from repro.render import render_incumbent_timeline

        save_svg(render_incumbent_timeline(data), args.svg)
        print(f"timeline rendered to {args.svg}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Contamination-free microfluidic switch synthesis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("cases", help="list built-in application cases")
    p.set_defaults(func=cmd_cases)

    p = sub.add_parser("show-switch", help="describe a switch model")
    p.add_argument("pins", type=int, nargs="?",
                   choices=[8, 12, 16, 24, 32],
                   help="crossbar pin count (omit with --fpva)")
    p.add_argument("--fpva", metavar="ROWSxCOLS",
                   help="describe a fully-programmable valve-array grid "
                        "instead (e.g. 3x4)")
    p.add_argument("--svg", help="render the structure to this SVG file")
    p.set_defaults(func=cmd_show_switch)

    p = sub.add_parser("synthesize", help="synthesize a case or JSON spec")
    p.add_argument("case", help="registry case name or path to a JSON spec")
    p.add_argument("--policy", choices=[b.value for b in BindingPolicy],
                   help="binding policy (registry cases)")
    p.add_argument("--backend", default="auto",
                   choices=["auto", "highs", "branch_bound", "parallel_bb",
                            "backtrack", "portfolio"])
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for --backend parallel_bb "
                        "(default: CPU count, capped at 4)")
    p.add_argument("--time-limit", type=float, default=120.0)
    p.add_argument("--pressure", default="ilp", choices=["ilp", "greedy"])
    p.add_argument("--on-error", default="degrade",
                   choices=["raise", "capture", "degrade"],
                   help="failure policy: propagate, capture into the "
                        "result, or fall back to the greedy heuristic")
    p.add_argument("--profile", action="store_true",
                   help="print the per-phase wall-clock breakdown")
    p.add_argument("--svg", help="render the result to this SVG file")
    p.add_argument("--json", help="write the result to this JSON file")
    p.add_argument("--trace",
                   help="record an observability trace to this file")
    p.add_argument("--trace-format", default="jsonl",
                   choices=["jsonl", "chrome", "both"],
                   help="trace export format: JSONL event stream, Chrome "
                        "trace_event JSON (Perfetto-loadable), or both "
                        "(derives .jsonl / .chrome.json suffixes)")
    p.add_argument("--store",
                   help="persistent solve cache directory (also honors "
                        "the REPRO_STORE environment variable)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore any store (explicit or REPRO_STORE): "
                        "cold solve, no write-through")
    p.add_argument("--faults", metavar="SPEC",
                   help="synthesize on a degraded switch: semicolon-"
                        "separated 'a-b:kind' valve faults (kinds "
                        "stuck_open/stuck_closed/blocked_segment, "
                        "short open/closed/blocked) masked out of the "
                        "path catalog before solving")
    p.set_defaults(func=cmd_synthesize)

    p = sub.add_parser(
        "repair",
        help="synthesize, inject valve faults, and self-heal the routing")
    p.add_argument("case", help="registry case name or path to a JSON spec")
    p.add_argument("--faults", required=True, metavar="SPEC",
                   help="semicolon-separated 'a-b:kind[@step]' valve "
                        "faults to strike (kinds stuck_open/stuck_closed/"
                        "blocked_segment, short open/closed/blocked; "
                        "@step delays the onset mid-campaign)")
    p.add_argument("--policy", choices=[b.value for b in BindingPolicy])
    p.add_argument("--backend", default="auto",
                   choices=["auto", "highs", "branch_bound", "parallel_bb",
                            "backtrack", "portfolio"])
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for --backend parallel_bb")
    p.add_argument("--time-limit", type=float, default=120.0)
    p.add_argument("--on-error", default="degrade",
                   choices=["raise", "capture", "degrade"])
    p.add_argument("--store",
                   help="persistent solve cache (fault-salted keys keep "
                        "degraded results apart; also honors REPRO_STORE)")
    p.add_argument("--svg", help="render the repaired layout to this file")
    p.add_argument("--json", help="write the repaired result to this file")
    p.set_defaults(func=cmd_repair)

    p = sub.add_parser("export-case", help="write a registry case as JSON")
    p.add_argument("case")
    p.add_argument("--policy", choices=[b.value for b in BindingPolicy])
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_export_case)

    p = sub.add_parser("compare", help="compare against spine/GRU baselines")
    p.add_argument("case")
    p.add_argument("--policy", choices=[b.value for b in BindingPolicy])
    p.add_argument("--time-limit", type=float, default=120.0)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("simulate",
                       help="synthesize then execute in the simulator")
    p.add_argument("case")
    p.add_argument("--policy", choices=[b.value for b in BindingPolicy])
    p.add_argument("--time-limit", type=float, default=120.0)
    p.add_argument("--faults", action="store_true",
                   help="also sweep stuck-open faults over essential valves")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("layout", help="chip co-layout around the switch")
    p.add_argument("case")
    p.add_argument("--policy", choices=[b.value for b in BindingPolicy])
    p.add_argument("--time-limit", type=float, default=120.0)
    p.add_argument("--svg", help="render the chip to this SVG file")
    p.set_defaults(func=cmd_layout)

    p = sub.add_parser(
        "serve",
        help="run the journaled synthesis job service until drained")
    p.add_argument("spec", nargs="*",
                   help="registry case names or JSON spec paths to submit "
                        "(on top of any pending work replayed from the "
                        "journal)")
    p.add_argument("--journal", required=True,
                   help="write-ahead journal path (JSONL); survives kills "
                        "and resumes on the next serve")
    p.add_argument("--policy", choices=[b.value for b in BindingPolicy])
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--queue-size", type=int, default=256)
    p.add_argument("--max-attempts", type=int, default=3)
    p.add_argument("--backends",
                   help="comma-separated backend degradation ladder "
                        "(default: the single auto backend)")
    p.add_argument("--time-limit", type=float, default=120.0)
    p.add_argument("--on-error", default="degrade",
                   choices=["raise", "capture", "degrade"])
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds granted to in-flight jobs on "
                        "SIGINT/SIGTERM before the rest is journaled "
                        "as pending")
    p.add_argument("--trace",
                   help="record the service's obs trace to this JSONL file")
    p.add_argument("--store",
                   help="persistent solve cache shared by the workers "
                        "(submissions already stored complete at "
                        "admission; also honors REPRO_STORE)")
    p.add_argument("--http", type=int, metavar="PORT",
                   help="serve the sharded HTTP/JSON platform on this "
                        "port (0 = ephemeral; --journal becomes a "
                        "directory of per-shard journals)")
    p.add_argument("--shards", type=int, default=2,
                   help="worker processes behind --http, each with its "
                        "own journal and a share of the job space")
    p.add_argument("--tenant-quota", type=int, default=None,
                   help="per-tenant cap on queued jobs per shard "
                        "(beyond it submissions are shed with a "
                        "tenant-quota reason)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="journal one synthesis job (optionally wait for its result)")
    p.add_argument("case", help="registry case name or path to a JSON spec")
    p.add_argument("--journal",
                   help="write-ahead journal for local submission "
                        "(exactly one of --journal/--url)")
    p.add_argument("--url",
                   help="base URL of a running `repro serve --http` "
                        "platform to submit to instead of a local journal")
    p.add_argument("--policy", choices=[b.value for b in BindingPolicy])
    p.add_argument("--wait", action="store_true",
                   help="start an in-process service on the journal, drain "
                        "it (this job included) and print the result; "
                        "with --url, long-poll the platform instead")
    p.add_argument("--tenant", default=None,
                   help="tenant label for quotas and per-tenant metrics")
    p.add_argument("--priority", type=int, default=0,
                   help="queue priority (higher pops first; default 0)")
    p.add_argument("--timeout", type=float, default=None,
                   help="with --url --wait: give up (exit 3) after this "
                        "many seconds; default waits indefinitely")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="with --wait: seconds granted to the in-flight "
                        "job on SIGINT/SIGTERM before exiting 3 with "
                        "the journal still pending")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--time-limit", type=float, default=120.0)
    p.add_argument("--on-error", default="degrade",
                   choices=["raise", "capture", "degrade"])
    p.add_argument("--store",
                   help="persistent solve cache (used with --wait; "
                        "also honors REPRO_STORE)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("cache",
                       help="inspect and maintain a persistent solve store")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)

    q = cache_sub.add_parser("stats",
                             help="entry counts, bytes and kinds of a store")
    q.add_argument("--store",
                   help="store directory (default: REPRO_STORE)")
    q.set_defaults(func=cmd_cache_stats)

    q = cache_sub.add_parser(
        "gc", help="evict least-recently-used entries down to a byte cap")
    q.add_argument("--store",
                   help="store directory (default: REPRO_STORE)")
    q.add_argument("--max-bytes", type=int, default=None,
                   help="byte cap to enforce now (default: the store's "
                        "configured cap, if any)")
    q.set_defaults(func=cmd_cache_gc)

    q = cache_sub.add_parser(
        "verify",
        help="validate every entry envelope; removes damaged ones")
    q.add_argument("--store",
                   help="store directory (default: REPRO_STORE)")
    q.add_argument("--no-repair", action="store_true",
                   help="report damage without deleting the entries")
    q.set_defaults(func=cmd_cache_verify)

    p = sub.add_parser("obs", help="inspect recorded observability traces")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    q = obs_sub.add_parser("summarize",
                           help="span/event/metric summary of one trace")
    q.add_argument("trace", help="JSONL trace file (from --trace)")
    q.add_argument("--validate", action="store_true",
                   help="check the trace against the repro-obs-v1 schema "
                        "invariants first")
    q.set_defaults(func=cmd_obs_summarize)

    q = obs_sub.add_parser("top",
                           help="live stats/metrics view of a running "
                                "`repro serve --http` platform")
    q.add_argument("--url", required=True,
                   help="base URL printed by `repro serve --http`")
    q.add_argument("--interval", type=float, default=2.0,
                   help="seconds between refreshes (default 2)")
    q.add_argument("--iterations", type=int, default=0,
                   help="stop after this many frames (0 = until Ctrl-C)")
    q.add_argument("--rows", type=int, default=12,
                   help="max metric lines shown per frame (default 12)")
    q.set_defaults(func=cmd_obs_top)

    q = obs_sub.add_parser("compare",
                           help="span-level diff between two traces")
    q.add_argument("trace_a")
    q.add_argument("trace_b")
    q.set_defaults(func=cmd_obs_compare)

    q = obs_sub.add_parser("timeline",
                           help="incumbent-vs-time chart of one trace")
    q.add_argument("trace", help="JSONL trace file (from --trace)")
    q.add_argument("--svg", help="also render the timeline to this SVG file")
    q.set_defaults(func=cmd_obs_timeline)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())

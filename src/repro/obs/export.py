"""Trace exporters and loaders: JSONL, Chrome ``trace_event``, text summary.

Three views of the same record stream:

* **JSONL** (`write_trace_jsonl`) — the canonical artifact: one header
  line (schema + manifest), then one JSON object per record, in seq
  order. Append-friendly, greppable, and diffable across runs.
* **Chrome trace** (`write_chrome_trace`) — the ``trace_event`` JSON
  consumed by Perfetto / ``chrome://tracing``: spans become ``B``/``E``
  duration events, point events become instants (``i``), counters and
  gauges become ``C`` counter tracks.
* **Summary / compare** (`format_summary`, `format_comparison`) — the
  plain-text digest behind ``repro obs summarize`` and ``obs compare``.

`validate_trace_records` is the schema check used by the tests and the
CI smoke step; it enforces the invariants documented in
docs/observability.md (monotonic timestamps, balanced spans, correct
parentage).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.io.atomic import atomic_write, atomic_write_text
from repro.obs.trace import OBS_SCHEMA, Tracer

PathLike = Union[str, Path]


@dataclass
class TraceData:
    """One loaded trace: header dict plus the record stream."""

    header: Dict[str, Any] = field(default_factory=dict)
    records: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def manifest(self) -> Dict[str, Any]:
        return self.header.get("manifest", {})

    def by_type(self, record_type: str) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("type") == record_type]

    def events_named(self, name: str) -> List[Dict[str, Any]]:
        return [r for r in self.records
                if r.get("type") == "event" and r.get("name") == name]

    @property
    def duration(self) -> float:
        return max((r.get("t", 0.0) for r in self.records), default=0.0)


def _records_of(trace: Union[Tracer, List[Dict[str, Any]]]) -> List[Dict[str, Any]]:
    return trace.records() if isinstance(trace, Tracer) else list(trace)


def write_trace_jsonl(trace: Union[Tracer, List[Dict[str, Any]]],
                      path: PathLike,
                      manifest: Optional[Dict[str, Any]] = None) -> Path:
    """Write the canonical JSONL artifact (header line + one record/line)."""
    records = _records_of(trace)
    header: Dict[str, Any] = {"type": "header", "schema": OBS_SCHEMA}
    if isinstance(trace, Tracer):
        if trace.name:
            header["name"] = trace.name
        if trace.dropped:
            header["dropped"] = trace.dropped
    if manifest is not None:
        header["manifest"] = manifest
    path = Path(path)
    with atomic_write(path) as fh:
        fh.write(json.dumps(header, sort_keys=False) + "\n")
        for record in records:
            fh.write(json.dumps(record, sort_keys=False) + "\n")
    return path


def read_trace_jsonl(path: PathLike) -> TraceData:
    """Load a JSONL trace; raises ValueError on a malformed file."""
    path = Path(path)
    data = TraceData()
    with path.open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
            if record.get("type") == "header":
                data.header = record
            else:
                data.records.append(record)
    if data.header.get("schema") not in (None, OBS_SCHEMA):
        raise ValueError(
            f"{path}: unsupported trace schema {data.header.get('schema')!r} "
            f"(this reader understands {OBS_SCHEMA})")
    return data


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------
def validate_trace_records(records: List[Dict[str, Any]]) -> None:
    """Assert the stream invariants; raises ValueError on violation.

    Checks: required fields per record type, non-decreasing ``seq``,
    non-decreasing ``t`` *per thread*, every ``span_end`` matches an
    open ``span_begin``, and every span/event parent was begun before
    its child.
    """
    last_seq = -1
    last_t_by_tid: Dict[int, float] = {}
    begun: Dict[int, Dict[str, Any]] = {}
    ended: set = set()
    for i, record in enumerate(records):
        rtype = record.get("type")
        if rtype == "metric":
            if "name" not in record or "kind" not in record:
                raise ValueError(f"record {i}: metric needs name and kind")
            continue
        if rtype not in ("span_begin", "span_end", "event"):
            raise ValueError(f"record {i}: unknown type {rtype!r}")
        for key in ("t", "seq", "name"):
            if key not in record:
                raise ValueError(f"record {i}: missing {key!r}")
        if record["seq"] <= last_seq:
            raise ValueError(f"record {i}: seq {record['seq']} not increasing")
        last_seq = record["seq"]
        tid = record.get("tid", 0)
        if record["t"] < last_t_by_tid.get(tid, 0.0) - 1e-9:
            raise ValueError(f"record {i}: timestamp went backwards on tid {tid}")
        last_t_by_tid[tid] = record["t"]
        if rtype == "span_begin":
            span = record["span"]
            if span in begun:
                raise ValueError(f"record {i}: span {span} begun twice")
            parent = record.get("parent")
            if parent is not None and parent not in begun:
                raise ValueError(
                    f"record {i}: span {span} parent {parent} never begun")
            begun[span] = record
        elif rtype == "span_end":
            span = record["span"]
            if span not in begun:
                raise ValueError(f"record {i}: span {span} ended but never begun")
            if span in ended:
                raise ValueError(f"record {i}: span {span} ended twice")
            ended.add(span)
        else:  # event
            span = record.get("span")
            if span is not None and span not in begun:
                raise ValueError(
                    f"record {i}: event under unknown span {span}")
    unclosed = set(begun) - ended
    if unclosed:
        raise ValueError(f"spans never closed: {sorted(unclosed)}")


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------
def chrome_trace_events(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Map our records onto ``trace_event`` dicts (ts in microseconds)."""
    out: List[Dict[str, Any]] = []
    for record in records:
        rtype = record.get("type")
        ts = round(record.get("t", 0.0) * 1e6, 3)
        tid = record.get("tid", 0)
        if rtype == "span_begin":
            out.append({"ph": "B", "name": record["name"], "cat": "span",
                        "ts": ts, "pid": 1, "tid": tid,
                        "args": record.get("attrs", {})})
        elif rtype == "span_end":
            out.append({"ph": "E", "name": record["name"], "cat": "span",
                        "ts": ts, "pid": 1, "tid": tid})
        elif rtype == "event":
            out.append({"ph": "i", "name": record["name"], "cat": "event",
                        "ts": ts, "pid": 1, "tid": tid, "s": "t",
                        "args": record.get("attrs", {})})
        elif rtype == "metric":
            value = record.get("value", record.get("mean"))
            if value is not None:
                out.append({"ph": "C", "name": record["name"], "cat": "metric",
                            "ts": ts, "pid": 1, "tid": 0,
                            "args": {"value": value}})
    return out


def write_chrome_trace(trace: Union[Tracer, List[Dict[str, Any]]],
                       path: PathLike,
                       manifest: Optional[Dict[str, Any]] = None) -> Path:
    """Write a Perfetto / chrome://tracing loadable JSON file."""
    payload: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(_records_of(trace)),
        "displayTimeUnit": "ms",
        "otherData": {"schema": OBS_SCHEMA},
    }
    if manifest is not None:
        payload["otherData"]["manifest"] = manifest
    return atomic_write_text(path, json.dumps(payload) + "\n")


def validate_chrome_trace(payload: Dict[str, Any]) -> None:
    """Check a loaded Chrome-trace JSON against the ``trace_event`` shape."""
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("chrome trace must be an object with 'traceEvents'")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    open_depth: Dict[int, int] = {}
    for i, ev in enumerate(events):
        for key in ("ph", "name", "ts", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"traceEvents[{i}]: missing {key!r}")
        if ev["ph"] not in ("B", "E", "X", "i", "C", "M"):
            raise ValueError(f"traceEvents[{i}]: unexpected phase {ev['ph']!r}")
        if ev["ph"] == "B":
            open_depth[ev["tid"]] = open_depth.get(ev["tid"], 0) + 1
        elif ev["ph"] == "E":
            depth = open_depth.get(ev["tid"], 0) - 1
            if depth < 0:
                raise ValueError(f"traceEvents[{i}]: E without matching B")
            open_depth[ev["tid"]] = depth
    if any(open_depth.values()):
        raise ValueError("unbalanced B/E events")


# ---------------------------------------------------------------------------
# text summary / compare
# ---------------------------------------------------------------------------
def _span_totals(records: List[Dict[str, Any]]) -> Dict[str, Tuple[int, float]]:
    """``name -> (count, total seconds)`` over the closed spans."""
    totals: Dict[str, Tuple[int, float]] = {}
    for record in records:
        if record.get("type") != "span_end":
            continue
        count, total = totals.get(record["name"], (0, 0.0))
        totals[record["name"]] = (count + 1, total + record.get("dur", 0.0))
    return totals


def _event_counts(records: List[Dict[str, Any]]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for record in records:
        if record.get("type") == "event":
            counts[record["name"]] = counts.get(record["name"], 0) + 1
    return counts


def _metrics(records: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    return {r["name"]: r for r in records if r.get("type") == "metric"}


def format_summary(data: TraceData, indent: str = "  ") -> str:
    """The ``repro obs summarize`` digest of one trace."""
    lines: List[str] = []
    name = data.header.get("name", "")
    lines.append(f"trace{f' {name!r}' if name else ''}: "
                 f"{len(data.records)} records over {data.duration:.4f}s")
    manifest = data.manifest
    if manifest:
        fields = [f"{k}={manifest[k]}" for k in
                  ("case", "backend", "python", "git",
                   "case_fingerprint", "config_fingerprint")
                  if k in manifest]
        lines.append(f"{indent}manifest: " + "  ".join(fields))
    dropped = data.header.get("dropped") or next(
        (r.get("value", 0) for r in data.records
         if r["type"] == "metric" and r["name"] == "trace_dropped"), 0)
    if dropped:
        lines.append(f"{indent}WARNING: {dropped} event(s) dropped at the "
                     f"bounded buffer — this trace is incomplete")

    totals = _span_totals(data.records)
    if totals:
        lines.append("spans:")
        width = max(len(n) for n in totals)
        for span_name, (count, total) in sorted(
                totals.items(), key=lambda kv: -kv[1][1]):
            lines.append(f"{indent}{span_name.ljust(width)}  x{count:<4d} "
                         f"{total:9.4f}s")
    counts = _event_counts(data.records)
    if counts:
        lines.append("events: " + ", ".join(
            f"{n} x{c}" for n, c in sorted(counts.items())))
    incumbents = data.events_named("incumbent")
    if incumbents:
        lines.append("incumbents:")
        for ev in incumbents:
            attrs = ev.get("attrs", {})
            detail = "  ".join(f"{k}={attrs[k]}" for k in
                               ("objective", "source", "nodes") if k in attrs)
            lines.append(f"{indent}t={ev['t']:.4f}s  {detail}")
    metrics = _metrics(data.records)
    if metrics:
        lines.append("metrics:")
        width = max(len(n) for n in metrics)
        for metric_name, record in sorted(metrics.items()):
            if record["kind"] == "histogram":
                value = (f"count={record.get('count', 0)} "
                         f"mean={record.get('mean', 0)}")
            else:
                value = str(record.get("value"))
            lines.append(f"{indent}{metric_name.ljust(width)}  {value}")
    return "\n".join(lines)


def format_comparison(a: TraceData, b: TraceData,
                      label_a: str = "A", label_b: str = "B",
                      indent: str = "  ") -> str:
    """Side-by-side digest of two traces (``repro obs compare``)."""
    lines: List[str] = [
        f"{label_a}: {len(a.records)} records over {a.duration:.4f}s   "
        f"{label_b}: {len(b.records)} records over {b.duration:.4f}s"
    ]
    for key in ("case_fingerprint", "config_fingerprint", "git", "backend"):
        va, vb = a.manifest.get(key), b.manifest.get(key)
        if va is not None or vb is not None:
            marker = "==" if va == vb else "!="
            lines.append(f"{indent}{key}: {va} {marker} {vb}")
    totals_a, totals_b = _span_totals(a.records), _span_totals(b.records)
    names = sorted(set(totals_a) | set(totals_b))
    if names:
        lines.append(f"spans ({label_a} vs {label_b}):")
        width = max(len(n) for n in names)
        for name in names:
            ta = totals_a.get(name, (0, 0.0))[1]
            tb = totals_b.get(name, (0, 0.0))[1]
            delta = tb - ta
            lines.append(f"{indent}{name.ljust(width)}  {ta:9.4f}s  "
                         f"{tb:9.4f}s  {delta:+9.4f}s")
    metrics_a, metrics_b = _metrics(a.records), _metrics(b.records)
    shared = sorted(set(metrics_a) & set(metrics_b))
    diffs = []
    for name in shared:
        va = metrics_a[name].get("value", metrics_a[name].get("count"))
        vb = metrics_b[name].get("value", metrics_b[name].get("count"))
        if va != vb:
            diffs.append(f"{indent}{name}: {va} -> {vb}")
    if diffs:
        lines.append("metrics (changed):")
        lines.extend(diffs)
    return "\n".join(lines)


__all__ = [
    "TraceData",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "validate_trace_records",
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "format_summary",
    "format_comparison",
]

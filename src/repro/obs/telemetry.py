"""Cross-process telemetry shipping and deterministic merge.

The `repro.obs` tracer is strictly per-process: spans, events and
metrics recorded inside a shard child, a ``parallel_bb`` worker or a
spawn-mode batch worker never reach the parent on their own. This
module is the plane that moves them:

* :class:`TelemetryShipper` — child side. Wraps the process-local
  :class:`~repro.obs.trace.Tracer` and cuts bounded, *framed* batches
  of everything recorded since the previous cut (records are shipped
  exactly once; metric snapshots are cumulative).
* :class:`TelemetryCollector` — parent side. Validates each batch's
  framing (a batch from a SIGKILLed child that was torn mid-build is
  dropped whole — never half-absorbed), keys state by
  ``(source, pid)`` so a respawned shard is a *new* stream rather than
  a rollback of the old one, and merges everything into one
  schema-valid ``repro-obs-v1`` record stream.
* :func:`merge_streams` — the deterministic merge itself. Records are
  ordered by ``(logical_clock, pid, seq)`` and re-identified (span
  ids, thread ids and sequence numbers are reassigned in merge order),
  so the output is a pure function of the input batches: the same
  batches produce byte-identical output no matter how many processes
  produced them or in what order they arrived.
* :func:`render_prometheus` / :func:`validate_prometheus_text` — text
  exposition of aggregated metric snapshots (no client library
  required), plus the validator CI uses to gate the format.
* :class:`FlightRecorder` — a bounded per-job ring of the spans and
  events carrying a job's correlation ID, retained after completion so
  ``GET /jobs/<id>/trace`` can answer for recently finished work.

Wire format (``TELEMETRY_VERSION = 1``)::

    {"v": 1, "source": "shard-0", "pid": 4242, "clock": 57,
     "n": 12, "complete": true,          # framing: count + end marker
     "records": [...],                   # repro-obs-v1 records
     "metrics": {"name": {...}, ...},    # cumulative registry snapshot
     "dropped": 0,                       # cumulative tracer drop count
     "foreign": [...]}                   # optional: relayed child batches

Everything here is stdlib-only and JSON-compatible, so batches travel
over the existing pickled-pipe RPC seams unchanged.
"""

from __future__ import annotations

import json
import os
import re
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import OBS_SCHEMA, Tracer

#: Bump on any incompatible change to the batch envelope above.
TELEMETRY_VERSION = 1

#: Default per-batch record bound: a shipper never puts more than this
#: many records in one batch (the remainder ships on the next cut), so
#: a chatty child cannot wedge the RPC pipe with one giant message.
MAX_BATCH_RECORDS = 10_000


# ---------------------------------------------------------------------------
# correlation ids
# ---------------------------------------------------------------------------
def correlation_id(job_id: str, submission: int) -> str:
    """The correlation ID for one accepted submission of one job.

    ``job_id`` is already the ``case_fingerprint-config_fingerprint``
    pair, so the pair plus a per-service submission ordinal uniquely
    names "this acceptance of this work" across the whole platform.
    """
    return f"{job_id}#{submission}"


def correlation_job(corr: str) -> str:
    """The job id a correlation ID belongs to."""
    return corr.split("#", 1)[0]


# ---------------------------------------------------------------------------
# child side: cut framed batches off a live tracer
# ---------------------------------------------------------------------------
class TelemetryShipper:
    """Cuts incremental, framed batches off a process-local tracer."""

    def __init__(self, tracer: Tracer, source: str = "",
                 max_batch: int = MAX_BATCH_RECORDS) -> None:
        self.tracer = tracer
        self.source = source or tracer.name or "proc"
        self.max_batch = max_batch
        self._sent = 0
        self._sent_foreign = 0
        self._lock = threading.Lock()

    def collect(self) -> Dict[str, Any]:
        """One batch of everything recorded since the previous cut.

        Buffer records ship exactly once (the shipper remembers its
        high-water mark); the metric snapshot and drop count are
        cumulative, so the parent always holds the child's latest
        totals even if an intermediate batch is lost with the child.
        """
        tracer = self.tracer
        with self._lock:
            with tracer._lock:
                records = tracer._records[self._sent:self._sent + self.max_batch]
                self._sent += len(records)
                foreign = list(tracer._foreign[self._sent_foreign:])
                self._sent_foreign += len(foreign)
                dropped = tracer.dropped
                clock = getattr(tracer, "clock", 0)
            batch = {
                "v": TELEMETRY_VERSION,
                "source": self.source,
                "pid": os.getpid(),
                "clock": clock,
                "records": [dict(r) for r in records],
                "metrics": tracer.metrics.snapshot(),
                "dropped": dropped,
            }
            if foreign:
                # Batches this tracer absorbed from *its own* children
                # (B&B workers under a shard) ride along, so grandchild
                # telemetry reaches the top-level collector intact.
                batch["foreign"] = foreign
            # Framing written last: a dict built by a process that dies
            # mid-way never carries a matching count + end marker.
            batch["n"] = len(batch["records"])
            batch["complete"] = True
            return batch


def validate_batch(batch: Any) -> bool:
    """True when ``batch`` is a whole, well-framed telemetry batch."""
    if not isinstance(batch, dict):
        return False
    if batch.get("v") != TELEMETRY_VERSION or not batch.get("complete"):
        return False
    records = batch.get("records")
    if not isinstance(records, list) or batch.get("n") != len(records):
        return False
    if not isinstance(batch.get("pid"), int):
        return False
    if not isinstance(batch.get("metrics"), dict):
        return False
    return all(isinstance(r, dict) and "type" in r for r in records)


# ---------------------------------------------------------------------------
# the deterministic merge
# ---------------------------------------------------------------------------
def _sanitize_source(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Repair one source's concatenated batches into a balanced stream.

    A child sampled mid-run (or killed) leaves dangling structure: a
    ``span_begin`` whose end never shipped, a ``span_end`` whose begin
    was dropped by the bounded buffer, an event pointing at a span we
    never saw. Torn *batches* are rejected whole upstream; this pass
    repairs torn *spans* so the merged stream always validates.
    """
    begun: Dict[int, Dict[str, Any]] = {}
    ended: set = set()
    out: List[Dict[str, Any]] = []
    for record in records:
        record = dict(record)
        rtype = record.get("type")
        if rtype == "span_begin":
            span = record["span"]
            if span in begun or span in ended:
                continue  # duplicate shipment; keep the first
            if record.get("parent") not in begun:
                record.pop("parent", None)
            begun[span] = record
        elif rtype == "span_end":
            span = record.get("span")
            if span not in begun or span in ended:
                continue  # end without a begin (or doubled): drop
            ended.add(span)
        elif rtype == "event":
            if record.get("span") is not None and record["span"] not in begun:
                record.pop("span", None)
        out.append(record)
    # Close anything still open, innermost (largest span id) first, so
    # the merged stream is balanced like a live tracer snapshot.
    last_t = out[-1].get("t", 0.0) if out else 0.0
    last_clock = out[-1].get("clock", 0) if out else 0
    last_seq = out[-1].get("seq", 0) if out else 0
    for span in sorted(set(begun) - ended, reverse=True):
        begin = begun[span]
        last_seq += 1
        out.append({
            "type": "span_end",
            "t": max(last_t, begin.get("t", 0.0)),
            "seq": last_seq,
            "clock": last_clock,
            "span": span,
            "name": begin.get("name", ""),
            "dur": round(max(0.0, last_t - begin.get("t", 0.0)), 7),
            "tid": begin.get("tid", 0),
            "truncated": True,
        })
    return out


def merge_streams(
        sources: Iterable[Tuple[str, int, List[Dict[str, Any]]]],
) -> List[Dict[str, Any]]:
    """Merge per-process record streams into one valid obs stream.

    ``sources`` is an iterable of ``(source_name, pid, records)``. The
    merge is deterministic: records are ordered by
    ``(logical_clock, pid, seq, source_name)``, then re-identified —
    span ids, thread ids and sequence numbers are reassigned in merge
    order so the output passes
    :func:`~repro.obs.export.validate_trace_records` as one stream.
    Each record is annotated with its origin (``src``/``pid``) so a
    merged trace stays attributable per process.
    """
    keyed: List[Tuple[Tuple[int, int, int, str], str, int, Dict[str, Any]]] = []
    for name, pid, records in sorted(sources, key=lambda s: (s[0], s[1])):
        for record in _sanitize_source(records):
            key = (record.get("clock", 0), pid, record.get("seq", 0), name)
            keyed.append((key, name, pid, record))
    keyed.sort(key=lambda item: item[0])

    out: List[Dict[str, Any]] = []
    span_map: Dict[Tuple[str, int, int], int] = {}
    tid_map: Dict[Tuple[str, int, int], int] = {}
    next_span = 1
    clock_floor: Dict[int, float] = {}  # merged tid -> last t seen
    for seq, (_, name, pid, record) in enumerate(keyed):
        record = dict(record)
        record["seq"] = seq
        record["src"] = name
        record["pid"] = pid
        tkey = (name, pid, record.get("tid", 0))
        tid = tid_map.get(tkey)
        if tid is None:
            tid = tid_map[tkey] = len(tid_map)
        record["tid"] = tid
        # Clamp per-merged-tid timestamps monotonic: t is relative to
        # each source tracer's birth, so it is only meaningful within a
        # source — which is exactly the per-tid granularity after the
        # tid remap above.
        t = record.get("t", 0.0)
        floor = clock_floor.get(tid, 0.0)
        if t < floor:
            t = record["t"] = floor
        clock_floor[tid] = t
        for field in ("span", "parent"):
            if field in record:
                skey = (name, pid, record[field])
                mapped = span_map.get(skey)
                if mapped is None:
                    mapped = span_map[skey] = next_span
                    next_span += 1
                record[field] = mapped
        out.append(record)
    return out


# ---------------------------------------------------------------------------
# parent side: accumulate batches, aggregate metrics, merge on demand
# ---------------------------------------------------------------------------
class TelemetryCollector:
    """Accumulates child batches and answers merged views.

    State is keyed by ``(source, pid)``: a respawned shard reports
    under a fresh pid, so its counters restart from zero *as a new
    stream* and aggregation (which sums across streams) stays
    monotonic across the kill — nothing the dead incarnation already
    shipped is ever un-counted.
    """

    def __init__(self, flight_jobs: int = 64,
                 flight_records: int = 512) -> None:
        self._lock = threading.Lock()
        self._records: "OrderedDict[Tuple[str, int], List[Dict[str, Any]]]" \
            = OrderedDict()
        self._metrics: Dict[Tuple[str, int], Dict[str, Any]] = {}
        self._dropped: Dict[Tuple[str, int], int] = {}
        self.rejected = 0
        self.flight = FlightRecorder(max_jobs=flight_jobs,
                                     max_records=flight_records)

    def absorb(self, batch: Any) -> bool:
        """Absorb one batch; False (and counted) when torn/invalid."""
        if not validate_batch(batch):
            with self._lock:
                self.rejected += 1
            return False
        key = (batch["source"], batch["pid"])
        with self._lock:
            self._records.setdefault(key, []).extend(batch["records"])
            self._metrics[key] = batch["metrics"]
            self._dropped[key] = batch.get("dropped", 0)
        # The flight ring mixes records from every process, so stamp
        # each record's origin now — the per-job merge groups on it.
        self.flight.observe(
            dict(r, src=batch["source"], pid=batch["pid"])
            for r in batch["records"])
        # Relayed grandchild batches (a shard forwarding its own B&B
        # workers' telemetry) are full batches themselves: recurse, so
        # torn relays are rejected individually without tearing the
        # relaying batch.
        for sub in batch.get("foreign") or []:
            self.absorb(sub)
        return True

    def sources(self) -> List[Tuple[str, int]]:
        with self._lock:
            return list(self._records)

    def dropped_total(self) -> int:
        """Tracer-side drops summed across every absorbed stream."""
        with self._lock:
            return sum(self._dropped.values())

    def merged(self,
               extra: Optional[Iterable[Tuple[str, int, List[Dict[str, Any]]]]]
               = None) -> List[Dict[str, Any]]:
        """One merged ``repro-obs-v1`` stream over every absorbed batch.

        ``extra`` adds streams that never went through :meth:`absorb`
        (typically the parent process's own tracer records).
        """
        with self._lock:
            sources = [(name, pid, list(records))
                       for (name, pid), records in self._records.items()]
        if extra:
            sources.extend((name, pid, list(records))
                           for name, pid, records in extra)
        return merge_streams(sources)

    def metrics_by_source(self) -> Dict[str, Dict[str, Any]]:
        """Latest metric snapshot per stream, keyed ``source@pid``."""
        with self._lock:
            return {f"{name}@{pid}": dict(snap)
                    for (name, pid), snap in sorted(self._metrics.items())}

    def aggregated_metrics(self) -> Dict[str, Dict[str, Any]]:
        """Sum counters/histograms and last-write gauges across streams.

        Sums run across *all* incarnations of a source, so aggregate
        counters are monotonic across a kill+respawn; gauges take the
        newest incarnation's value (the old process no longer has a
        queue depth).
        """
        with self._lock:
            snaps = sorted(self._metrics.items())
        out: Dict[str, Dict[str, Any]] = {}
        for (_, _), snapshot in snaps:
            for name, snap in snapshot.items():
                merged = out.get(name)
                if merged is None:
                    out[name] = json.loads(json.dumps(snap))
                    continue
                kind = snap.get("kind")
                if kind == "counter":
                    merged["value"] += snap.get("value", 0)
                elif kind == "gauge":
                    merged["value"] = snap.get("value", 0)
                elif kind == "histogram":
                    _merge_histogram(merged, snap)
        return dict(sorted(out.items()))


def _merge_histogram(into: Dict[str, Any], snap: Dict[str, Any]) -> None:
    into["count"] += snap.get("count", 0)
    into["sum"] = round(into.get("sum", 0.0) + snap.get("sum", 0.0), 9)
    if snap.get("count"):
        into["min"] = min(into.get("min", snap["min"]), snap["min"])
        into["max"] = max(into.get("max", snap["max"]), snap["max"])
        into["mean"] = round(into["sum"] / into["count"], 9) \
            if into["count"] else 0.0
        buckets = into.setdefault("buckets", {})
        for le, count in snap.get("buckets", {}).items():
            buckets[le] = buckets.get(le, 0) + count


# ---------------------------------------------------------------------------
# per-job flight recorder
# ---------------------------------------------------------------------------
class FlightRecorder:
    """Bounded ring of recent records per correlation ID.

    Retains up to ``max_jobs`` jobs (LRU) with up to ``max_records``
    records each, *after* completion, so an operator can pull the trace
    of a job that just finished without having configured tracing up
    front. Lookup works by full correlation ID or by the job id it
    embeds.
    """

    def __init__(self, max_jobs: int = 64, max_records: int = 512) -> None:
        self.max_jobs = max_jobs
        self.max_records = max_records
        self._lock = threading.Lock()
        self._rings: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()
        self._by_job: Dict[str, str] = {}

    def observe(self, records: Iterable[Dict[str, Any]]) -> None:
        with self._lock:
            for record in records:
                corr = record.get("corr")
                if not corr:
                    continue
                ring = self._rings.get(corr)
                if ring is None:
                    ring = self._rings[corr] = []
                    self._by_job[correlation_job(corr)] = corr
                    while len(self._rings) > self.max_jobs:
                        evicted, _ = self._rings.popitem(last=False)
                        self._by_job.pop(correlation_job(evicted), None)
                ring.append(dict(record))
                if len(ring) > self.max_records:
                    del ring[0]
                self._rings.move_to_end(corr)

    def correlations(self) -> List[str]:
        with self._lock:
            return list(self._rings)

    def trace(self, key: str) -> Optional[List[Dict[str, Any]]]:
        """The job's records as one small schema-valid stream.

        ``key`` may be a correlation ID or a bare job id. Records are
        re-sequenced and ring-torn span structure is repaired, so the
        result passes ``validate_trace_records`` on its own.
        """
        with self._lock:
            corr = key if key in self._rings else self._by_job.get(key)
            if corr is None:
                return None
            records = [dict(r) for r in self._rings[corr]]
        return merge_streams(_group_by_origin(records))


def _group_by_origin(
        records: List[Dict[str, Any]],
) -> List[Tuple[str, int, List[Dict[str, Any]]]]:
    """Split flight-ring records back into their per-process streams."""
    groups: "OrderedDict[Tuple[str, int], List[Dict[str, Any]]]" = OrderedDict()
    for record in records:
        key = (record.get("src", "flight"), record.get("pid", 0))
        groups.setdefault(key, []).append(record)
    return [(name, pid, recs) for (name, pid), recs in groups.items()]


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{[^{}]*\})?"
    r" (?:[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)|NaN|[+-]?Inf)"
    r"(?: [0-9]+)?$")


def _metric_name(name: str) -> str:
    """Sanitize an instrument name into a legal Prometheus name."""
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not name or not re.match(r"[a-zA-Z_:]", name[0]):
        name = "_" + name
    return name


def _labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    pairs = []
    for key in sorted(labels):
        value = str(labels[key]).replace("\\", r"\\").replace(
            '"', r'\"').replace("\n", r"\n")
        pairs.append(f'{key}="{value}"')
    return "{" + ",".join(pairs) + "}"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        return repr(value)
    return str(value)


def render_prometheus(
        series: Iterable[Tuple[str, Dict[str, str], Dict[str, Any]]],
) -> str:
    """Render ``(name, labels, snapshot)`` series as text exposition.

    Snapshots are the :class:`~repro.obs.metrics.MetricsRegistry` shape
    (``{"kind": "counter"|"gauge"|"histogram", ...}``). Histograms emit
    cumulative ``_bucket{le=...}`` samples plus ``_sum``/``_count``,
    per the exposition format. Series sharing a name are grouped under
    one ``# TYPE`` header; a name seen with two different kinds raises
    ``ValueError`` (that is the collision this layer exists to
    prevent).
    """
    grouped: "OrderedDict[str, List[Tuple[Dict[str, str], Dict[str, Any]]]]" \
        = OrderedDict()
    kinds: Dict[str, str] = {}
    for name, labels, snap in series:
        name = _metric_name(name)
        kind = snap.get("kind", "gauge")
        if kinds.setdefault(name, kind) != kind:
            raise ValueError(f"metric {name!r} exported as both "
                             f"{kinds[name]} and {kind}")
        grouped.setdefault(name, []).append((dict(labels), snap))
    lines: List[str] = []
    for name in sorted(grouped):
        kind = kinds[name]
        prom_kind = {"counter": "counter", "gauge": "gauge",
                     "histogram": "histogram"}[kind]
        lines.append(f"# HELP {name} repro {kind}")
        lines.append(f"# TYPE {name} {prom_kind}")
        for labels, snap in grouped[name]:
            if kind == "histogram":
                cumulative = 0
                buckets = snap.get("buckets", {})
                bounds = sorted((float(le), le) for le in buckets
                                if le != "inf")
                for _, le in bounds:
                    cumulative += buckets[le]
                    sample_labels = dict(labels, le=le)
                    lines.append(f"{name}_bucket{_labels(sample_labels)} "
                                 f"{cumulative}")
                cumulative += buckets.get("inf", 0)
                lines.append(f"{name}_bucket"
                             f"{_labels(dict(labels, le='+Inf'))} "
                             f"{cumulative}")
                lines.append(f"{name}_sum{_labels(labels)} "
                             f"{_fmt(snap.get('sum', 0.0))}")
                lines.append(f"{name}_count{_labels(labels)} "
                             f"{snap.get('count', 0)}")
            else:
                lines.append(f"{name}{_labels(labels)} "
                             f"{_fmt(snap.get('value', 0))}")
    return "\n".join(lines) + "\n" if lines else ""


def series_from_sources(
        metrics_by_source: Dict[str, Dict[str, Any]],
) -> List[Tuple[str, Dict[str, str], Dict[str, Any]]]:
    """Per-source snapshots → labelled series (``instance`` label).

    A snapshot key of the ``name[instance]`` form (an instanced
    instrument, see :class:`~repro.obs.metrics.MetricsRegistry`) wins
    over the stream's source name for the ``instance`` label.
    """
    from repro.obs.metrics import split_metric_key
    series: List[Tuple[str, Dict[str, str], Dict[str, Any]]] = []
    for source, snapshot in sorted(metrics_by_source.items()):
        stream = source.split("@", 1)[0]
        for key, snap in sorted(snapshot.items()):
            name, instance = split_metric_key(key)
            labels = {"instance": snap.get("instance") or instance or stream}
            snap = {k: v for k, v in snap.items() if k != "instance"}
            series.append((name, labels, snap))
    return series


def validate_prometheus_text(text: str) -> int:
    """Validate exposition text; returns the sample count or raises."""
    samples = 0
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment: {line!r}")
            if not _NAME_OK.match(parts[2]):
                raise ValueError(f"line {lineno}: bad metric name "
                                 f"{parts[2]!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary",
                        "untyped"):
                    raise ValueError(f"line {lineno}: bad TYPE: {line!r}")
                if parts[2] in typed:
                    raise ValueError(f"line {lineno}: duplicate TYPE for "
                                     f"{parts[2]!r}")
                typed[parts[2]] = parts[3]
            continue
        match = _SAMPLE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name, labelstr = match.group(1), match.group(2)
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if typed and name not in typed and base not in typed:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE")
        if labelstr:
            body = labelstr[1:-1]
            if body:
                for pair in re.findall(
                        r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"',
                        body):
                    if not _LABEL_OK.match(pair[0]):
                        raise ValueError(
                            f"line {lineno}: bad label {pair[0]!r}")
                rebuilt = ",".join(
                    f'{k}="{v}"' for k, v in re.findall(
                        r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"',
                        body))
                if rebuilt != body.rstrip(","):
                    raise ValueError(
                        f"line {lineno}: malformed labels: {labelstr!r}")
        samples += 1
    if not samples:
        raise ValueError("no samples in exposition output")
    return samples


__all__ = [
    "TELEMETRY_VERSION",
    "MAX_BATCH_RECORDS",
    "OBS_SCHEMA",
    "TelemetryShipper",
    "TelemetryCollector",
    "FlightRecorder",
    "correlation_id",
    "correlation_job",
    "validate_batch",
    "merge_streams",
    "render_prometheus",
    "series_from_sources",
    "validate_prometheus_text",
]

"""Counters, gauges and histograms with snapshot export.

A :class:`MetricsRegistry` is a flat name → instrument map owned by a
:class:`~repro.obs.trace.Tracer`. Producers look an instrument up once
(one dict access) and then update it with plain attribute arithmetic, so
a hot loop can keep a reference and pay no per-update lookup:

    lp_solves = tracer.metrics.counter("lp_solves")
    ...
    lp_solves.inc()          # inside the loop

Instruments are intentionally not thread-safe per-update (CPython makes
the single ``+=`` effectively atomic and telemetry tolerates a lost
increment under contention); the registry itself is lock-protected.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (queue depth, open nodes, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count/sum/min/max plus fixed power-of-two bucket counts
    (``le`` upper bounds), so the export is bounded regardless of how
    many observations arrive.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    #: Bucket upper bounds; one overflow bucket follows implicitly.
    BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * (len(self.BOUNDS) + 1)

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": "histogram",
            "count": self.count,
            "sum": round(self.total, 9),
        }
        if self.count:
            out.update(min=self.min, max=self.max,
                       mean=round(self.mean, 9),
                       buckets=dict(zip(
                           [str(b) for b in self.BOUNDS] + ["inf"],
                           self.buckets)))
        return out


class MetricsRegistry:
    """Name-keyed instruments with typed lookup and snapshot export."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name)
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """``name -> {kind, value/count/...}`` for every instrument."""
        with self._lock:
            instruments = list(self._instruments.items())
        return {name: inst.snapshot() for name, inst in sorted(instruments)}

    def records(self) -> List[Dict[str, Any]]:
        """The snapshot as ``metric`` records for the event stream."""
        return [{"type": "metric", "name": name, **snap}
                for name, snap in self.snapshot().items()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

"""Counters, gauges and histograms with snapshot export.

A :class:`MetricsRegistry` is a flat name → instrument map owned by a
:class:`~repro.obs.trace.Tracer`. Producers look an instrument up once
(one dict access) and then update it with plain attribute arithmetic, so
a hot loop can keep a reference and pay no per-update lookup:

    lp_solves = tracer.metrics.counter("lp_solves")
    ...
    lp_solves.inc()          # inside the loop

Instruments are intentionally not thread-safe per-update (CPython makes
the single ``+=`` effectively atomic and telemetry tolerates a lost
increment under contention); the registry itself is lock-protected.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "instance", "value")

    def __init__(self, name: str, instance: "str | None" = None) -> None:
        self.name = name
        self.instance = instance
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (queue depth, open nodes, ...)."""

    __slots__ = ("name", "instance", "value")

    def __init__(self, name: str, instance: "str | None" = None) -> None:
        self.name = name
        self.instance = instance
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count/sum/min/max plus fixed power-of-two bucket counts
    (``le`` upper bounds), so the export is bounded regardless of how
    many observations arrive.
    """

    __slots__ = ("name", "instance", "count", "total", "min", "max",
                 "buckets")

    #: Bucket upper bounds; one overflow bucket follows implicitly.
    BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0)

    def __init__(self, name: str, instance: "str | None" = None) -> None:
        self.name = name
        self.instance = instance
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * (len(self.BOUNDS) + 1)

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": "histogram",
            "count": self.count,
            "sum": round(self.total, 9),
        }
        if self.count:
            out.update(min=self.min, max=self.max,
                       mean=round(self.mean, 9),
                       buckets=dict(zip(
                           [str(b) for b in self.BOUNDS] + ["inf"],
                           self.buckets)))
        return out


def metric_key(name: str, instance: "str | None" = None) -> str:
    """The registry key for an instrument (``name`` or ``name[inst]``)."""
    return name if instance is None else f"{name}[{instance}]"


def split_metric_key(key: str) -> "tuple[str, str | None]":
    """Invert :func:`metric_key`: ``name[inst]`` → ``(name, inst)``."""
    if key.endswith("]") and "[" in key:
        name, _, instance = key[:-1].partition("[")
        return name, instance
    return key, None


class MetricsRegistry:
    """Name-keyed instruments with typed lookup and snapshot export.

    Instruments optionally carry an ``instance`` — the component that
    owns them (``shard-0``, a store path, ...). Instances namespace the
    registry key, so two services sharing one process (and therefore
    one tracer registry) keep separate ``service_*`` gauges instead of
    overwriting each other; exports surface the instance as a label.
    Without ``instance`` everything behaves exactly as before.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, instance: "str | None" = None):
        key = metric_key(name, instance)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = self._instruments[key] = cls(name, instance)
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {key!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}")
        return instrument

    def counter(self, name: str, instance: "str | None" = None) -> Counter:
        return self._get(name, Counter, instance)

    def gauge(self, name: str, instance: "str | None" = None) -> Gauge:
        return self._get(name, Gauge, instance)

    def histogram(self, name: str,
                  instance: "str | None" = None) -> Histogram:
        return self._get(name, Histogram, instance)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """``key -> {kind, value/count/...}`` for every instrument.

        Keys are plain names for un-instanced instruments and
        ``name[instance]`` otherwise; instanced snapshots also carry
        the instance inline for label-aware consumers.
        """
        with self._lock:
            instruments = list(self._instruments.items())
        out: Dict[str, Dict[str, Any]] = {}
        for key, inst in sorted(instruments):
            snap = inst.snapshot()
            if inst.instance is not None:
                snap["instance"] = inst.instance
            out[key] = snap
        return out

    def records(self) -> List[Dict[str, Any]]:
        """The snapshot as ``metric`` records for the event stream."""
        with self._lock:
            instruments = list(self._instruments.items())
        out: List[Dict[str, Any]] = []
        for _, inst in sorted(instruments, key=lambda item: item[0]):
            record = {"type": "metric", "name": inst.name, **inst.snapshot()}
            if inst.instance is not None:
                record["instance"] = inst.instance
            out.append(record)
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "metric_key", "split_metric_key"]

"""Hierarchical spans and a structured event stream (the `repro.obs` core).

A :class:`Tracer` records two kinds of telemetry into one bounded,
append-only buffer:

* **spans** — hierarchical wall-clock intervals with ids, parent links
  and attributes (``span_begin``/``span_end`` record pairs). Every
  :meth:`repro.perf.record.PerfRecorder.phase` automatically opens a
  span on the installed tracer, so the synthesis pipeline
  (catalog → build → … → verify), ``Model.solve`` sub-phases and the
  portfolio members all appear in one tree without any call-site
  changes.
* **events** — typed point-in-time records from the search internals:
  ``incumbent`` (objective + wall time), ``bound``, ``cut_round``,
  ``progress``, ``deadline``, ``degrade``, ``fault_injected``,
  ``race_winner``, …  Producers attach arbitrary JSON-compatible
  attributes.

**Cost model.** With no tracer installed (the default), every
instrumentation site reduces to one module-global ``is None`` check —
there is no buffering, no clock read, no allocation. With a tracer
installed, each record is one dict append under a lock; the buffer is
bounded (``max_events``) and silently drops *events* past the cap
(counted in :attr:`Tracer.dropped`) so a runaway solver cannot exhaust
memory. ``span_end`` records are never dropped — a truncated stream
still closes every span it opened.

Timestamps are seconds since tracer creation from
``time.perf_counter`` (monotonic); every record additionally carries a
process-wide sequence number so equal-clock records keep their order.

Threading: the span stack is thread-local, so concurrent producers
(the portfolio race) nest correctly within their own thread; a member
thread links to the submitting thread's span via an explicit
``parent=`` id. The installed tracer itself is a plain module global —
visible from worker threads, never inherited by worker *processes*
(each batch worker installs its own).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry

#: Version tag stamped into every exported artifact (JSONL header,
#: Chrome trace metadata, manifests). Bump on any incompatible change
#: to the record shapes documented in docs/observability.md.
OBS_SCHEMA = "repro-obs-v1"

#: Event names with a defined meaning (producers may add more; the
#: schema treats the name as an open vocabulary).
KNOWN_EVENTS = (
    "incumbent",        # objective, source, nodes — incumbent improved
    "bound",            # bound — best known lower bound changed
    "cut_round",        # cuts — cutting planes appended to the LP
    "progress",         # nodes, open, lp_calls — periodic search heartbeat
    "deadline",         # where — a wall-clock budget ran out
    "degrade",          # reason — the degradation ladder stepped down
    "fault_injected",   # kind, solve — repro.testing fired a planned fault
    "race_winner",      # member — portfolio race settled
    "member_failed",    # member, reason — a portfolio racer died
    "cache_hit",        # kind — a memoized artifact was reused
    "solve_result",     # status, objective — one Model.solve finished
    # -- repro.service job lifecycle ------------------------------------
    "job_submitted",    # job (+dedup/replayed) — a job entered the service
    "job_started",      # job, attempt, backend — a worker picked it up
    "job_retry",        # job, attempt, delay — failed, re-queued w/ backoff
    "job_done",         # job, state, attempts — terminal done/degraded
    "job_failed",       # job, attempts, error — retries exhausted
    "shed",             # job, queue_depth — admission control refused it
    "breaker_open",     # backend, failures — circuit breaker tripped
    "breaker_half_open",  # backend — cooldown over, one probe admitted
    "breaker_close",    # backend — probe succeeded, backend readmitted
    "worker_crashed",   # worker, error — supervisor replaced a worker
    "drain",            # pending, completed — graceful shutdown summary
    "interrupt",        # where — SIGINT/KeyboardInterrupt acknowledged
    "batch_row",        # index, case, status — one run_batch row finished
)

_seq_counter = itertools.count()
_ids = itertools.count(1)


class Tracer:
    """A bounded in-memory recorder for spans, events and metrics."""

    def __init__(self, name: str = "", max_events: int = 200_000) -> None:
        self.name = name
        self.max_events = max_events
        self.metrics = MetricsRegistry()
        self.dropped = 0
        #: Lamport-style logical clock: every record gets the next tick,
        #: and :meth:`witness` advances past any remote clock seen over
        #: an RPC — so a deterministic cross-process merge can order
        #: causally-related records without trusting wall clocks.
        self.clock = 0
        self._records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self._local = threading.local()
        self._tids: Dict[int, int] = {}
        # Telemetry batches absorbed from child processes (shards, B&B
        # workers, spawn batch workers); merged in at snapshot time.
        self._foreign: List[Dict[str, Any]] = []
        # Spans begun but not yet ended (any thread); lets a snapshot
        # taken mid-run close them synthetically so every exported
        # stream is balanced (a cancelled portfolio loser may still be
        # inside its span when the winner's trace is written).
        self._open: Dict[int, Dict[str, Any]] = {}

    # -- internals -----------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        """A small stable id for the calling thread (0 = first seen)."""
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
            if tid is None:
                tid = self._tids[ident] = len(self._tids)
        return tid

    def _append(self, record: Dict[str, Any], *, droppable: bool = True) -> None:
        corr = getattr(self._local, "corr", None)
        if corr is not None and "corr" not in record:
            record["corr"] = corr
        # seq is assigned under the same lock that orders the append, so
        # buffer order and seq order always agree across threads; the
        # logical clock ticks under the same lock for the same reason.
        with self._lock:
            if droppable and len(self._records) >= self.max_events:
                self.dropped += 1
                return
            record["seq"] = next(_seq_counter)
            self.clock += 1
            record["clock"] = self.clock
            self._records.append(record)

    # -- cross-process plumbing ------------------------------------------
    def witness(self, remote_clock: int) -> int:
        """Advance the logical clock past a remote one (RPC receipt)."""
        with self._lock:
            self.clock = max(self.clock, int(remote_clock)) + 1
            return self.clock

    @contextmanager
    def correlate(self, corr: Optional[str]) -> Iterator[Optional[str]]:
        """Stamp every record this thread appends with ``corr``.

        The correlation ID attributes spans/events/metric samples to one
        accepted job submission across process boundaries; ``None``
        leaves the current context untouched.
        """
        if corr is None:
            yield None
            return
        previous = getattr(self._local, "corr", None)
        self._local.corr = corr
        try:
            yield corr
        finally:
            self._local.corr = previous

    def current_correlation(self) -> Optional[str]:
        """This thread's active correlation ID, or None."""
        return getattr(self._local, "corr", None)

    def absorb_batch(self, batch: Dict[str, Any]) -> bool:
        """Adopt a telemetry batch shipped by a child process.

        The batch's records are merged into :meth:`records` snapshots
        (deterministically, via :mod:`repro.obs.telemetry`); its metric
        snapshot is *not* folded into this registry — callers that want
        aggregated metrics use a `TelemetryCollector`. Torn batches are
        rejected (returns False) and counted as ``telemetry_rejected``.
        """
        from repro.obs.telemetry import validate_batch
        if not validate_batch(batch):
            self.metrics.counter("telemetry_rejected").inc()
            return False
        with self._lock:
            self._foreign.append(batch)
            self.clock = max(self.clock, int(batch.get("clock", 0))) + 1
        return True

    # -- spans ---------------------------------------------------------
    def current_span_id(self) -> Optional[int]:
        """The innermost open span of *this thread* (None at top level)."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, parent: Optional[int] = None,
             **attrs: Any) -> Iterator[int]:
        """Open a span; yields its id for explicit cross-thread linking.

        ``parent`` overrides the implicit thread-local parent — the
        portfolio uses this to hang member-thread spans under the
        submitting thread's ``solve`` span.
        """
        span_id = next(_ids)
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        record: Dict[str, Any] = {
            "type": "span_begin",
            "t": round(self._now(), 7),
            "span": span_id,
            "name": name,
            "tid": self._tid(),
        }
        if parent is not None:
            record["parent"] = parent
        if attrs:
            record["attrs"] = attrs
        self._append(record, droppable=False)
        with self._lock:
            self._open[span_id] = record
        stack.append(span_id)
        start = self._now()
        try:
            yield span_id
        finally:
            end = self._now()
            if stack and stack[-1] == span_id:
                stack.pop()
            with self._lock:
                self._open.pop(span_id, None)
            self._append({
                "type": "span_end",
                "t": round(end, 7),
                "span": span_id,
                "name": name,
                "dur": round(end - start, 7),
                "tid": self._tid(),
            }, droppable=False)

    # -- events ----------------------------------------------------------
    def event(self, name: str, **attrs: Any) -> None:
        """Record one typed point-in-time event under the current span."""
        record: Dict[str, Any] = {
            "type": "event",
            "t": round(self._now(), 7),
            "name": name,
            "tid": self._tid(),
        }
        span = self.current_span_id()
        if span is not None:
            record["span"] = span
        if attrs:
            record["attrs"] = attrs
        self._append(record)

    # -- export -----------------------------------------------------------
    def records(self, with_metrics: bool = True) -> List[Dict[str, Any]]:
        """A snapshot of the buffer, closed and ready for export.

        Spans still open at snapshot time (e.g. a cancelled portfolio
        loser still unwinding) get a synthetic ``span_end`` marked
        ``truncated`` — innermost first — so the stream is always
        balanced. With ``with_metrics`` one trailing ``metric`` record
        per registered instrument is appended.
        """
        now = round(self._now(), 7)
        with self._lock:
            out = list(self._records)
            still_open = sorted(self._open.items(), reverse=True)
            foreign = list(self._foreign)
            clock = self.clock
        for span_id, begin in still_open:
            clock += 1
            out.append({
                "type": "span_end",
                "t": now,
                "seq": next(_seq_counter),
                "clock": clock,
                "span": span_id,
                "name": begin["name"],
                "dur": round(now - begin["t"], 7),
                "tid": begin.get("tid", 0),
                "truncated": True,
            })
        if with_metrics:
            if self.dropped:
                # Surface buffer overflow in the stream itself so a
                # truncated trace never silently looks complete.
                self.metrics.counter("trace_dropped").value = self.dropped
            for record in self.metrics.records():
                clock += 1
                record.update(t=now, seq=next(_seq_counter), clock=clock)
                out.append(record)
        if foreign:
            from repro.obs.telemetry import merge_streams
            streams: Dict[Any, List[Dict[str, Any]]] = {}
            streams[(self.name or "main", os.getpid())] = out
            for batch in foreign:
                key = (batch["source"], batch["pid"])
                streams.setdefault(key, []).extend(batch["records"])
            return merge_streams(
                [(name, pid, recs) for (name, pid), recs in streams.items()])
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:
        return (f"Tracer({self.name!r}, records={len(self)}, "
                f"dropped={self.dropped})")


# ---------------------------------------------------------------------------
# The installed tracer: one module global, checked by every producer.
# ---------------------------------------------------------------------------
_current: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is disabled."""
    return _current


@contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Install ``tracer`` for the duration of a block (None = disable).

    Installation is process-global (worker threads see it; worker
    processes do not) and restores the previous tracer on exit, so
    nested traced regions compose.
    """
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous


def obs_event(name: str, **attrs: Any) -> None:
    """Emit an event on the installed tracer; no-op when disabled."""
    tracer = _current
    if tracer is not None:
        tracer.event(name, **attrs)


@contextmanager
def obs_span(name: str, **attrs: Any) -> Iterator[Optional[int]]:
    """Open a span on the installed tracer; no-op when disabled."""
    tracer = _current
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as span_id:
        yield span_id


@contextmanager
def correlate(corr: Optional[str]) -> Iterator[Optional[str]]:
    """Correlation context on the installed tracer; no-op when disabled."""
    tracer = _current
    if tracer is None or corr is None:
        yield corr
        return
    with tracer.correlate(corr):
        yield corr


def current_correlation() -> Optional[str]:
    """The installed tracer's active correlation ID, or None."""
    tracer = _current
    return tracer.current_correlation() if tracer is not None else None


__all__ = [
    "OBS_SCHEMA",
    "KNOWN_EVENTS",
    "Tracer",
    "current_tracer",
    "use_tracer",
    "obs_event",
    "obs_span",
    "correlate",
    "current_correlation",
]

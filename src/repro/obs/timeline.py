"""Incumbent-vs-time timelines from a recorded event stream.

MILP debugging lives on this plot: when did the first incumbent land,
how fast did the objective improve, and how long did the solver then
spend proving optimality? :func:`incumbent_trajectory` extracts the
step function from ``incumbent`` events; :func:`ascii_timeline` renders
it in the terminal (``repro obs timeline``), and
:func:`repro.render.trace_svg.render_incumbent_timeline` draws the SVG
version of the same data.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.export import TraceData


def incumbent_trajectory(data: TraceData) -> List[Tuple[float, float, str]]:
    """``(t_seconds, objective, source)`` per incumbent improvement."""
    points: List[Tuple[float, float, str]] = []
    for ev in data.events_named("incumbent"):
        attrs = ev.get("attrs", {})
        objective = attrs.get("objective")
        if objective is None:
            continue
        points.append((float(ev["t"]), float(objective),
                       str(attrs.get("source", ""))))
    return points


def _marks(data: TraceData, name: str) -> List[float]:
    return [float(ev["t"]) for ev in data.events_named(name)]


def ascii_timeline(data: TraceData, width: int = 64,
                   height: int = 12) -> str:
    """A monospace objective-vs-time chart of the incumbent trajectory.

    ``*`` marks an incumbent improvement, ``-`` continues its plateau;
    the footer flags cut rounds (``c``) and deadline events (``!``) on
    the shared time axis.
    """
    points = incumbent_trajectory(data)
    if not points:
        return "(no incumbent events in this trace)"
    t_end = max(data.duration, points[-1][0], 1e-9)
    objectives = [p[1] for p in points]
    lo, hi = min(objectives), max(objectives)
    span = hi - lo

    def col(t: float) -> int:
        return min(width - 1, int(t / t_end * (width - 1)))

    def row(obj: float) -> int:
        if span <= 0:
            return height - 1
        # best objective (lowest, we minimize) on the bottom row
        return min(height - 1, int((hi - obj) / span * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    for i, (t, obj, _) in enumerate(points):
        c0 = col(t)
        r = height - 1 - row(obj)
        t_next = points[i + 1][0] if i + 1 < len(points) else t_end
        for c in range(c0, max(c0 + 1, col(t_next) + 1)):
            if grid[r][c] == " ":
                grid[r][c] = "-"
        grid[r][c0] = "*"

    lines = []
    for r, cells in enumerate(grid):
        if r == 0:
            label = f"{hi:>10.3f} "
        elif r == height - 1:
            label = f"{lo:>10.3f} "
        else:
            label = " " * 11
        lines.append(label + "|" + "".join(cells))
    axis = [" "] * width
    for t in _marks(data, "cut_round"):
        axis[col(t)] = "c"
    for t in _marks(data, "deadline"):
        axis[col(t)] = "!"
    lines.append(" " * 11 + "+" + "-" * width)
    if any(ch != " " for ch in axis):
        lines.append(" " * 12 + "".join(axis))
    lines.append(f"{'':11} 0s{'':{max(1, width - 12)}}{t_end:.3f}s")
    legend = [f"{len(points)} incumbent(s), best={min(objectives):g}"]
    if _marks(data, "deadline"):
        legend.append("'!' = deadline hit")
    if _marks(data, "cut_round"):
        legend.append("'c' = cut round")
    lines.append(" ".join(legend))
    return "\n".join(lines)


def timeline_points(data: TraceData
                    ) -> Dict[str, Any]:
    """The render-ready bundle consumed by the SVG timeline renderer."""
    return {
        "incumbents": incumbent_trajectory(data),
        "cut_rounds": _marks(data, "cut_round"),
        "deadlines": _marks(data, "deadline"),
        "duration": data.duration,
        "name": data.header.get("name", ""),
    }


__all__ = ["incumbent_trajectory", "ascii_timeline", "timeline_points"]

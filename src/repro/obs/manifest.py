"""Run manifests: everything needed to reproduce a recorded run.

A manifest is a flat JSON-compatible dict stamped into every exported
trace (and writable standalone next to BENCH/CSV artifacts). It
answers "what produced these numbers": the exact configuration
(fingerprinted), the case (fingerprinted via its canonical JSON form),
the backend, and the environment (python / platform / library versions
/ git describe).

Fingerprints are sha256 over canonical JSON (sorted keys), truncated
to 16 hex chars — collision-safe at the scale of a benchmark matrix
and short enough to eyeball-diff in a table.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs.trace import OBS_SCHEMA


def _sha16(payload: Any) -> str:
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def config_fingerprint(options: Any) -> str:
    """Stable hash of a configuration object.

    Dataclasses (e.g. :class:`~repro.core.synthesizer.SynthesisOptions`)
    hash their field dict minus the fields declared ``compare=False`` —
    the dataclass's own marker for members that do not affect what is
    computed (an attached tracer, the persistent cache handle). Plain
    dicts hash as-is.

    This digest keys Tier A of the persistent solve cache and the
    service's job identity, so it must stay stable across releases;
    ``tests/test_fingerprints.py`` pins known values.
    """
    if dataclasses.is_dataclass(options) and not isinstance(options, type):
        payload = {
            f.name: getattr(options, f.name)
            for f in dataclasses.fields(options)
            if f.compare
        }
    elif isinstance(options, dict):
        payload = options
    else:
        payload = repr(options)
    return _sha16(payload)


def case_fingerprint(spec: Any) -> str:
    """Structural hash of a spec via its canonical JSON form."""
    from repro.io.spec_json import spec_to_dict

    return _sha16(spec_to_dict(spec))


def git_describe(root: Optional[Path] = None) -> str:
    """``git describe --always --dirty`` of the source tree, or "unknown"."""
    if root is None:
        root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=root, capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() or "unknown"


def _library_versions() -> Dict[str, str]:
    versions: Dict[str, str] = {}
    for lib in ("numpy", "scipy", "networkx"):
        try:
            versions[lib] = __import__(lib).__version__
        except Exception:  # missing or broken: the manifest still stands
            versions[lib] = "unavailable"
    return versions


def run_manifest(spec: Any = None, options: Any = None,
                 extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build the manifest for one run (all arguments optional)."""
    manifest: Dict[str, Any] = {
        "schema": OBS_SCHEMA,
        "created_unix": round(time.time(), 3),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git": git_describe(),
        "libraries": _library_versions(),
    }
    if spec is not None:
        manifest["case"] = getattr(spec, "name", str(spec))
        manifest["case_fingerprint"] = case_fingerprint(spec)
    if options is not None:
        manifest["config_fingerprint"] = config_fingerprint(options)
        backend = getattr(options, "backend", None)
        if backend is not None:
            manifest["backend"] = backend
    if extra:
        manifest.update(extra)
    return manifest


def save_manifest(manifest: Dict[str, Any], path) -> Path:
    from repro.io.atomic import atomic_write_text

    return atomic_write_text(
        path, json.dumps(manifest, indent=2, sort_keys=True) + "\n")


__all__ = ["config_fingerprint", "case_fingerprint", "git_describe",
           "run_manifest", "save_manifest"]

"""Observability: spans, solver event streams, metrics, run manifests.

``repro.obs`` is the always-on-cheap telemetry layer (schema
``repro-obs-v1``, see docs/observability.md). Install a
:class:`Tracer` and every pipeline phase becomes a span, the solver
internals emit ``incumbent`` / ``bound`` / ``cut_round`` / ``deadline``
events, and metrics accumulate in a registry — all exportable as JSONL,
Chrome ``trace_event`` JSON (Perfetto-loadable) or a text summary, each
stamped with a reproducibility manifest::

    from repro.obs import Tracer, run_manifest, use_tracer, write_trace_jsonl

    tracer = Tracer("demo")
    with use_tracer(tracer):
        result = synthesize(spec, options)
    write_trace_jsonl(tracer, "trace.jsonl",
                      manifest=run_manifest(spec, options))

With no tracer installed every instrumentation site is a single
``is None`` check — disabled tracing costs nothing measurable.
"""

from repro.obs.export import (
    TraceData,
    chrome_trace_events,
    format_comparison,
    format_summary,
    read_trace_jsonl,
    validate_chrome_trace,
    validate_trace_records,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.manifest import (
    case_fingerprint,
    config_fingerprint,
    git_describe,
    run_manifest,
    save_manifest,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.telemetry import (
    FlightRecorder,
    TelemetryCollector,
    TelemetryShipper,
    correlation_id,
    correlation_job,
    merge_streams,
    render_prometheus,
    series_from_sources,
    validate_batch,
    validate_prometheus_text,
)
from repro.obs.timeline import ascii_timeline, incumbent_trajectory, timeline_points
from repro.obs.trace import (
    KNOWN_EVENTS,
    OBS_SCHEMA,
    Tracer,
    correlate,
    current_correlation,
    current_tracer,
    obs_event,
    obs_span,
    use_tracer,
)

__all__ = [
    "OBS_SCHEMA",
    "KNOWN_EVENTS",
    "Tracer",
    "current_tracer",
    "use_tracer",
    "obs_event",
    "obs_span",
    "correlate",
    "current_correlation",
    "TelemetryShipper",
    "TelemetryCollector",
    "FlightRecorder",
    "correlation_id",
    "correlation_job",
    "merge_streams",
    "validate_batch",
    "render_prometheus",
    "series_from_sources",
    "validate_prometheus_text",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceData",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "write_chrome_trace",
    "chrome_trace_events",
    "validate_trace_records",
    "validate_chrome_trace",
    "format_summary",
    "format_comparison",
    "run_manifest",
    "save_manifest",
    "config_fingerprint",
    "case_fingerprint",
    "git_describe",
    "ascii_timeline",
    "incumbent_trajectory",
    "timeline_points",
]

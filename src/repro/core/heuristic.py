"""Greedy heuristic synthesizer (baseline for the IQP ablations).

A fast, non-optimal counterpart of :func:`repro.core.synthesizer.synthesize`:

1. **Binding** — fixed: as given; clockwise: modules spread over the
   pins in the given order; unfixed: flow endpoints paired onto
   adjacent pins (source next to its first target), remaining modules
   filled in.
2. **Routing** — flows routed one by one on the shortest path that
   avoids the sites already claimed by conflicting flows.
3. **Scheduling** — first-fit coloring of the collision graph
   (two flows collide when they come from different inlets and their
   routed paths share a site).

The result is verified with the same independent verifier as the exact
synthesizer, so when the heuristic returns a solution it is a *valid*
one — just not necessarily minimal in channel length or set count.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.core.solution import SynthesisResult, SynthesisStatus
from repro.core.spec import BindingPolicy, NodePolicy, SwitchSpec
from repro.core.valves import analyze_valves
from repro.core.pressure import share_pressure
from repro.core.verify import verify_result
from repro.deadline import Deadline
from repro.switches.base import segment_key
from repro.switches.paths import Path
from repro.switches.reduce import reduce_switch


def synthesize_greedy(spec: SwitchSpec, verify: bool = True,
                      pressure_sharing: bool = True,
                      time_limit: Optional[float] = None) -> SynthesisResult:
    """Greedy synthesis; returns NO_SOLUTION when the heuristic fails.

    Failure does not prove infeasibility — it only means the greedy
    choices dead-ended (the exact synthesizer may still succeed).

    ``time_limit`` bounds the run: the heuristic checks the deadline
    between its stages and returns a TIMEOUT result instead of starting
    a stage it has no budget left for. Each stage is polynomial and
    fast, so the overshoot is at most one stage.
    """
    start = time.perf_counter()
    deadline = Deadline(time_limit)
    binding = _greedy_binding(spec)
    if binding is None:
        return SynthesisResult(spec, SynthesisStatus.NO_SOLUTION,
                               runtime=time.perf_counter() - start, solver="greedy")
    if deadline.expired():
        return SynthesisResult(spec, SynthesisStatus.TIMEOUT,
                               runtime=time.perf_counter() - start, solver="greedy")

    flow_paths = _greedy_routing(spec, binding)
    if flow_paths is None:
        return SynthesisResult(spec, SynthesisStatus.NO_SOLUTION,
                               runtime=time.perf_counter() - start, solver="greedy")
    if deadline.expired():
        return SynthesisResult(spec, SynthesisStatus.TIMEOUT,
                               runtime=time.perf_counter() - start, solver="greedy")

    flow_sets = _greedy_schedule(spec, flow_paths)
    used: Set[Tuple[str, str]] = set()
    for path in flow_paths.values():
        used.update(path.segments)

    result = SynthesisResult(
        spec=spec,
        status=SynthesisStatus.FEASIBLE,
        runtime=time.perf_counter() - start,
        binding=binding,
        flow_paths=flow_paths,
        flow_sets=flow_sets,
        used_segments=used,
        solver="greedy",
    )
    result.valves = analyze_valves(spec.switch, flow_paths, flow_sets)
    result.reduced = reduce_switch(spec.switch, used, result.valves.essential)
    if pressure_sharing and result.valves.essential:
        result.pressure = share_pressure(
            result.valves.status, valves=sorted(result.valves.essential),
            method="greedy",
        )
    if verify:
        verify_result(result)
    return result


# ----------------------------------------------------------------------
def _greedy_binding(spec: SwitchSpec) -> Optional[Dict[str, str]]:
    pins = spec.switch.pins
    if spec.binding is BindingPolicy.FIXED:
        return dict(spec.fixed_binding or {})
    if spec.binding is BindingPolicy.CLOCKWISE:
        order = spec.module_order or spec.modules
        # spread the modules evenly around the pin cycle
        step = len(pins) / len(order)
        binding = {}
        taken: Set[str] = set()
        for idx, m in enumerate(order):
            pin = pins[int(idx * step) % len(pins)]
            if pin in taken:
                return None
            binding[m] = pin
            taken.add(pin)
        return binding
    # unfixed: put each source right before its targets around the cycle
    ordered: List[str] = []
    for f in spec.flows:
        if f.source not in ordered:
            ordered.append(f.source)
        if f.target not in ordered:
            ordered.append(f.target)
    for m in spec.modules:
        if m not in ordered:
            ordered.append(m)
    return {m: pins[i] for i, m in enumerate(ordered)}


def _constraint_nodes(spec: SwitchSpec, vertices) -> Set[str]:
    switch = spec.switch
    nodes = {v for v in vertices if not switch.is_pin(v)}
    if spec.node_policy is NodePolicy.PAPER:
        from repro.switches.base import MAJOR_KINDS
        nodes = {n for n in nodes if switch.kinds[n] in MAJOR_KINDS}
    return nodes


def _greedy_routing(spec: SwitchSpec,
                    binding: Dict[str, str]) -> Optional[Dict[int, Path]]:
    switch = spec.switch
    flow_paths: Dict[int, Path] = {}
    counter = itertools.count(10_000)  # synthetic path indices, unique per flow
    for f in spec.flows:
        src, dst = binding[f.source], binding[f.target]
        graph = switch.graph.copy()
        # forbid sites already claimed by conflicting flows
        for other in spec.conflicts_of(f.id):
            if other not in flow_paths:
                continue
            other_path = flow_paths[other]
            for n in _constraint_nodes(spec, other_path.vertices):
                if n in graph and n not in (src, dst):
                    graph.remove_node(n)
            for a, b in other_path.segments:
                if graph.has_edge(a, b):
                    graph.remove_edge(a, b)
        # pins other than the endpoints are dead ends anyway (degree 1)
        try:
            vertices = nx.shortest_path(graph, src, dst, weight="length")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None
        segs = frozenset(segment_key(a, b) for a, b in zip(vertices, vertices[1:]))
        flow_paths[f.id] = Path(
            index=next(counter),
            source_pin=src,
            target_pin=dst,
            vertices=tuple(vertices),
            nodes=frozenset(v for v in vertices if not switch.is_pin(v)),
            segments=segs,
            length=sum(switch.segments[k].length for k in segs),
        )
    return flow_paths


def _greedy_schedule(spec: SwitchSpec,
                     flow_paths: Dict[int, Path]) -> List[List[int]]:
    source_of = {f.id: f.source for f in spec.flows}

    def collide(i: int, j: int) -> bool:
        if source_of[i] == source_of[j]:
            return False
        pi, pj = flow_paths[i], flow_paths[j]
        if _constraint_nodes(spec, pi.vertices) & _constraint_nodes(spec, pj.vertices):
            return True
        return bool(set(pi.segments) & set(pj.segments))

    sets: List[List[int]] = []
    for f in spec.flows:
        for group in sets:
            if all(not collide(f.id, other) for other in group):
                group.append(f.id)
                break
        else:
            sets.append([f.id])
    return [sorted(g) for g in sets]


# ----------------------------------------------------------------------
def model_assignment(built, result: SynthesisResult):
    """Map a greedy result onto a built model's variables.

    Returns a complete ``{Var: value}`` assignment suitable as a warm
    start for the exact solvers, or ``None`` when the greedy solution is
    not representable in the model (a routed path missing from the path
    catalog, a set assignment outside the symmetry-broken ``w`` grid, a
    binding that is not clockwise in the required order). The caller
    re-validates the assignment against the model's constraints, so this
    function only needs to be *complete*, not to re-prove feasibility.
    """
    if result.status is not SynthesisStatus.FEASIBLE:
        return None
    if not result.binding or not result.flow_paths:
        return None
    spec = built.spec
    switch = spec.switch
    values: Dict[object, float] = {}

    def path_sites(p: Path) -> Set[Tuple[str, object]]:
        nodes = p.major_nodes(switch) if spec.node_policy is NodePolicy.PAPER \
            else p.nodes
        sites: Set[Tuple[str, object]] = {("node", n) for n in nodes}
        sites.update(("seg", k) for k in p.segments)
        return sites

    # Path choice: match each routed path to a catalog candidate by
    # endpoints and segment set (greedy paths carry synthetic indices).
    chosen: Dict[int, Path] = {}
    for f in spec.flows:
        g = result.flow_paths.get(f.id)
        if g is None:
            return None
        match = next(
            (p for p in built.allowed_paths[f.id]
             if p.source_pin == g.source_pin and p.target_pin == g.target_pin
             and p.segments == g.segments),
            None,
        )
        if match is None:
            return None
        chosen[f.id] = match
    for (fid, pidx), var in built.x.items():
        values[var] = 1.0 if chosen[fid].index == pidx else 0.0
    for (m, pin), var in built.y.items():
        values[var] = 1.0 if result.binding.get(m) == pin else 0.0
    site_cache = {fid: path_sites(p) for fid, p in chosen.items()}
    for (fid, site), var in built.a.items():
        values[var] = 1.0 if site in site_cache[fid] else 0.0

    set_of: Dict[int, int] = {}
    for s, group in enumerate(result.flow_sets):
        for fid in group:
            set_of[fid] = s
    if built.w:
        for fid, s in set_of.items():
            if (fid, s) not in built.w:
                return None
    for (fid, s), var in built.w.items():
        if fid not in set_of:
            return None
        values[var] = 1.0 if set_of[fid] == s else 0.0
    for s, var in built.u.items():
        values[var] = 1.0 if s < len(result.flow_sets) else 0.0
    used = {k for p in chosen.values() for k in p.segments}
    for key, var in built.used.items():
        values[var] = 1.0 if key in used else 0.0

    # Scheduling counters follow directly from the chosen paths/sets.
    source_of = {f.id: f.source for f in spec.flows}

    def k_count(m: str, site, s: int) -> float:
        return float(sum(
            1 for fid in chosen
            if source_of[fid] == m and set_of.get(fid) == s
            and site in site_cache[fid]
        ))

    for (m, site, s), var in built.sched_k.items():
        values[var] = k_count(m, site, s)
    for (site, s), var in built.sched_K.items():
        values[var] = sum(
            values[kvar] for (m2, site2, s2), kvar in built.sched_k.items()
            if site2 == site and s2 == s
        )
    for (m, site, s), var in built.sched_q.items():
        values[var] = 1.0 if values[built.sched_k[(m, site, s)]] == 0.0 else 0.0
    for (m, site, s), var in built.sched_b.items():
        values[var] = 1.0 if k_count(m, site, s) > 0 else 0.0

    # Clockwise auxiliaries: the wrap indicator must single out exactly
    # one descent in the cyclic pin sequence, which holds iff the
    # binding really is clockwise in the required order.
    if built.pin_index_var:
        for m, var in built.pin_index_var.items():
            pin = result.binding.get(m)
            if pin is None:
                return None
            values[var] = float(switch.pin_index(pin))
    if built.wrap_q:
        order = list(spec.module_order or [])
        if len(order) <= 1:
            for var in built.wrap_q.values():
                values[var] = 1.0
        else:
            wraps = []
            for idx, m_a in enumerate(order):
                m_b = order[(idx + 1) % len(order)]
                pa = switch.pin_index(result.binding[m_a])
                pb = switch.pin_index(result.binding[m_b])
                wraps.append(1.0 if pa >= pb else 0.0)
            if sum(wraps) != 1.0:
                return None
            for idx, m_a in enumerate(order):
                values[built.wrap_q[m_a]] = wraps[idx]
    return values

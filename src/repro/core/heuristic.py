"""Greedy heuristic synthesizer (baseline for the IQP ablations).

A fast, non-optimal counterpart of :func:`repro.core.synthesizer.synthesize`:

1. **Binding** — fixed: as given; clockwise: modules spread over the
   pins in the given order; unfixed: flow endpoints paired onto
   adjacent pins (source next to its first target), remaining modules
   filled in.
2. **Routing** — flows routed one by one on the shortest path that
   avoids the sites already claimed by conflicting flows.
3. **Scheduling** — first-fit coloring of the collision graph
   (two flows collide when they come from different inlets and their
   routed paths share a site).

The result is verified with the same independent verifier as the exact
synthesizer, so when the heuristic returns a solution it is a *valid*
one — just not necessarily minimal in channel length or set count.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.core.solution import SynthesisResult, SynthesisStatus
from repro.core.spec import BindingPolicy, NodePolicy, SwitchSpec
from repro.core.valves import analyze_valves
from repro.core.pressure import share_pressure
from repro.core.verify import verify_result
from repro.switches.base import segment_key
from repro.switches.paths import Path
from repro.switches.reduce import reduce_switch


def synthesize_greedy(spec: SwitchSpec, verify: bool = True,
                      pressure_sharing: bool = True) -> SynthesisResult:
    """Greedy synthesis; returns NO_SOLUTION when the heuristic fails.

    Failure does not prove infeasibility — it only means the greedy
    choices dead-ended (the exact synthesizer may still succeed).
    """
    start = time.perf_counter()
    binding = _greedy_binding(spec)
    if binding is None:
        return SynthesisResult(spec, SynthesisStatus.NO_SOLUTION,
                               runtime=time.perf_counter() - start, solver="greedy")

    flow_paths = _greedy_routing(spec, binding)
    if flow_paths is None:
        return SynthesisResult(spec, SynthesisStatus.NO_SOLUTION,
                               runtime=time.perf_counter() - start, solver="greedy")

    flow_sets = _greedy_schedule(spec, flow_paths)
    used: Set[Tuple[str, str]] = set()
    for path in flow_paths.values():
        used.update(path.segments)

    result = SynthesisResult(
        spec=spec,
        status=SynthesisStatus.FEASIBLE,
        runtime=time.perf_counter() - start,
        binding=binding,
        flow_paths=flow_paths,
        flow_sets=flow_sets,
        used_segments=used,
        solver="greedy",
    )
    result.valves = analyze_valves(spec.switch, flow_paths, flow_sets)
    result.reduced = reduce_switch(spec.switch, used, result.valves.essential)
    if pressure_sharing and result.valves.essential:
        result.pressure = share_pressure(
            result.valves.status, valves=sorted(result.valves.essential),
            method="greedy",
        )
    if verify:
        verify_result(result)
    return result


# ----------------------------------------------------------------------
def _greedy_binding(spec: SwitchSpec) -> Optional[Dict[str, str]]:
    pins = spec.switch.pins
    if spec.binding is BindingPolicy.FIXED:
        return dict(spec.fixed_binding or {})
    if spec.binding is BindingPolicy.CLOCKWISE:
        order = spec.module_order or spec.modules
        # spread the modules evenly around the pin cycle
        step = len(pins) / len(order)
        binding = {}
        taken: Set[str] = set()
        for idx, m in enumerate(order):
            pin = pins[int(idx * step) % len(pins)]
            if pin in taken:
                return None
            binding[m] = pin
            taken.add(pin)
        return binding
    # unfixed: put each source right before its targets around the cycle
    ordered: List[str] = []
    for f in spec.flows:
        if f.source not in ordered:
            ordered.append(f.source)
        if f.target not in ordered:
            ordered.append(f.target)
    for m in spec.modules:
        if m not in ordered:
            ordered.append(m)
    return {m: pins[i] for i, m in enumerate(ordered)}


def _constraint_nodes(spec: SwitchSpec, vertices) -> Set[str]:
    switch = spec.switch
    nodes = {v for v in vertices if not switch.is_pin(v)}
    if spec.node_policy is NodePolicy.PAPER:
        from repro.switches.base import MAJOR_KINDS
        nodes = {n for n in nodes if switch.kinds[n] in MAJOR_KINDS}
    return nodes


def _greedy_routing(spec: SwitchSpec,
                    binding: Dict[str, str]) -> Optional[Dict[int, Path]]:
    switch = spec.switch
    flow_paths: Dict[int, Path] = {}
    counter = itertools.count(10_000)  # synthetic path indices, unique per flow
    for f in spec.flows:
        src, dst = binding[f.source], binding[f.target]
        graph = switch.graph.copy()
        # forbid sites already claimed by conflicting flows
        for other in spec.conflicts_of(f.id):
            if other not in flow_paths:
                continue
            other_path = flow_paths[other]
            for n in _constraint_nodes(spec, other_path.vertices):
                if n in graph and n not in (src, dst):
                    graph.remove_node(n)
            for a, b in other_path.segments:
                if graph.has_edge(a, b):
                    graph.remove_edge(a, b)
        # pins other than the endpoints are dead ends anyway (degree 1)
        try:
            vertices = nx.shortest_path(graph, src, dst, weight="length")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None
        segs = frozenset(segment_key(a, b) for a, b in zip(vertices, vertices[1:]))
        flow_paths[f.id] = Path(
            index=next(counter),
            source_pin=src,
            target_pin=dst,
            vertices=tuple(vertices),
            nodes=frozenset(v for v in vertices if not switch.is_pin(v)),
            segments=segs,
            length=sum(switch.segments[k].length for k in segs),
        )
    return flow_paths


def _greedy_schedule(spec: SwitchSpec,
                     flow_paths: Dict[int, Path]) -> List[List[int]]:
    source_of = {f.id: f.source for f in spec.flows}

    def collide(i: int, j: int) -> bool:
        if source_of[i] == source_of[j]:
            return False
        pi, pj = flow_paths[i], flow_paths[j]
        if _constraint_nodes(spec, pi.vertices) & _constraint_nodes(spec, pj.vertices):
            return True
        return bool(set(pi.segments) & set(pj.segments))

    sets: List[List[int]] = []
    for f in spec.flows:
        for group in sets:
            if all(not collide(f.id, other) for other in group):
                group.append(f.id)
                break
        else:
            sets.append([f.id])
    return [sorted(g) for g in sets]

"""IQP model construction (§3 of the paper).

:class:`SynthesisModelBuilder` turns a :class:`~repro.core.spec.SwitchSpec`
plus a pre-enumerated :class:`~repro.switches.paths.PathCatalog` into a
:class:`repro.opt.Model`:

* path assignment — eqs. (3.1)–(3.2);
* module-to-pin binding and its coupling to path endpoints —
  eqs. (3.9)–(3.13);
* contamination avoidance — eq. (3.3);
* flow scheduling — eqs. (3.4)–(3.6) (the K/k/q′ counters), plus the
  indicator side ``k ≤ (1 − q′)·N`` the construction needs to be sound;
* the objective ``α·N_sets + β·L_flow`` — eq. (3.7).

Constraints are stated over *sites*: the switch nodes selected by the
node policy plus every flow segment. Usage indicators ``a[i, site]``
make both the contamination and the scheduling constraints linear in
``x``; the only quadratic terms are the paper's ``w·a`` products, which
the model layer linearizes exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.errors import SpecError
from repro.opt import Model, Var, VarType, quicksum
from repro.opt.cuts import conflict_cliques
from repro.core.spec import (
    BindingPolicy,
    ConflictForm,
    Flow,
    NodePolicy,
    SchedulingForm,
    SwitchSpec,
)
from repro.switches.paths import Path, PathCatalog

#: A constraint site: ``("node", name)`` or ``("seg", (a, b))``.
Site = Tuple[str, Union[str, Tuple[str, str]]]


@dataclass
class BuiltModel:
    """The assembled optimization model plus its variable handles."""

    spec: SwitchSpec
    catalog: PathCatalog
    model: Model
    sites: List[Site]
    allowed_paths: Dict[int, List[Path]]          # flow id -> candidate paths
    x: Dict[Tuple[int, int], Var]                 # (flow id, path index)
    y: Dict[Tuple[str, str], Var]                 # (module, pin)
    a: Dict[Tuple[int, Site], Var]                # (flow id, site) usage
    w: Dict[Tuple[int, int], Var]                 # (flow id, set index)
    u: Dict[int, Var]                             # set-used indicators
    used: Dict[Tuple[str, str], Var]              # segment usage
    pin_index_var: Dict[str, Var] = field(default_factory=dict)   # clockwise
    wrap_q: Dict[str, Var] = field(default_factory=dict)          # clockwise
    # Scheduling auxiliaries, keyed for heuristic warm-start assembly.
    sched_k: Dict[Tuple[str, Site, int], Var] = field(default_factory=dict)
    sched_K: Dict[Tuple[Site, int], Var] = field(default_factory=dict)
    sched_q: Dict[Tuple[str, Site, int], Var] = field(default_factory=dict)
    sched_b: Dict[Tuple[str, Site, int], Var] = field(default_factory=dict)
    n_sets_expr: object = None
    length_expr: object = None


class SynthesisModelBuilder:
    """Builds the synthesis IQP for one switch case."""

    def __init__(self, spec: SwitchSpec, catalog: PathCatalog) -> None:
        self.spec = spec
        self.catalog = catalog
        self.switch = spec.switch

    # ------------------------------------------------------------------
    def build(self) -> BuiltModel:
        spec = self.spec
        model = Model(spec.name)

        sites = self._sites()
        allowed = self._allowed_paths()

        x = self._path_vars(model, allowed)
        y = self._binding_vars(model)
        self._path_assignment_constraints(model, x, allowed)
        self._binding_constraints(model, y)
        self._coupling_constraints(model, x, y, allowed)
        a = self._usage_vars(model, x, allowed, sites)
        self._contamination_constraints(model, a, sites)

        w, u = self._set_vars(model)
        self._sched_handles: Dict[str, Dict] = {"k": {}, "K": {}, "q": {}, "b": {}}
        self._scheduling_constraints(model, a, w, sites)
        self._set_cover_cuts(model, w, u, allowed)

        used = self._segment_usage_vars(model, a)

        built = BuiltModel(
            spec=spec, catalog=self.catalog, model=model, sites=sites,
            allowed_paths=allowed, x=x, y=y, a=a, w=w, u=u, used=used,
            sched_k=self._sched_handles["k"], sched_K=self._sched_handles["K"],
            sched_q=self._sched_handles["q"], sched_b=self._sched_handles["b"],
        )
        if spec.binding is BindingPolicy.CLOCKWISE:
            self._clockwise_constraints(model, y, built)
        elif spec.binding is BindingPolicy.FIXED:
            self._fixed_constraints(model, y)
        if spec.binding is not BindingPolicy.FIXED:
            self._rotation_symmetry_breaking(model, y)

        self._objective(model, built)
        return built

    # ------------------------------------------------------------------
    # sites and candidate paths
    # ------------------------------------------------------------------
    def _sites(self) -> List[Site]:
        if self.spec.node_policy is NodePolicy.PAPER:
            nodes = self.switch.major_nodes()
        else:
            nodes = self.switch.all_nodes()
        site_list: List[Site] = [("node", n) for n in nodes]
        site_list.extend(("seg", key) for key in sorted(self.switch.segments))
        return site_list

    def _path_sites(self, path: Path) -> List[Site]:
        if self.spec.node_policy is NodePolicy.PAPER:
            nodes = path.major_nodes(self.switch)
        else:
            nodes = path.nodes
        result: List[Site] = [("node", n) for n in nodes]
        result.extend(("seg", key) for key in path.segments)
        return result

    def _allowed_paths(self) -> Dict[int, List[Path]]:
        spec = self.spec
        allowed: Dict[int, List[Path]] = {}
        for f in spec.flows:
            if spec.binding is BindingPolicy.FIXED:
                assert spec.fixed_binding is not None
                src_pin = spec.fixed_binding[f.source]
                dst_pin = spec.fixed_binding[f.target]
                paths = self.catalog.between(src_pin, dst_pin)
                if not paths:
                    raise SpecError(
                        f"{f}: no candidate path between pins {src_pin} and {dst_pin}"
                    )
            else:
                paths = list(self.catalog)
            allowed[f.id] = paths
        return allowed

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def _path_vars(self, model: Model, allowed) -> Dict[Tuple[int, int], Var]:
        x = {}
        for f in self.spec.flows:
            for p in allowed[f.id]:
                x[(f.id, p.index)] = model.add_binary(f"x_f{f.id}_d{p.index}")
        return x

    def _binding_vars(self, model: Model) -> Dict[Tuple[str, str], Var]:
        y = {}
        for m in self.spec.modules:
            for p in self.switch.pins:
                y[(m, p)] = model.add_binary(f"y_{m}_{p}")
        return y

    def _usage_vars(self, model: Model, x, allowed, sites) -> Dict[Tuple[int, Site], Var]:
        """a[i, site] == sum of x over the flow's paths using the site."""
        a: Dict[Tuple[int, Site], Var] = {}
        paths_using: Dict[Tuple[int, Site], List[Path]] = {}
        for f in self.spec.flows:
            for p in allowed[f.id]:
                for site in self._path_sites(p):
                    paths_using.setdefault((f.id, site), []).append(p)
        for f in self.spec.flows:
            for site in sites:
                key = (f.id, site)
                users = paths_using.get(key)
                if not users:
                    continue  # the flow can never touch this site
                var = model.add_binary(f"a_f{f.id}_{_site_tag(site)}")
                model.add_constr(
                    var == quicksum(x[(f.id, p.index)] for p in users),
                    f"use_f{f.id}_{_site_tag(site)}",
                )
                a[key] = var
        # The defining equalities force every a to the (integral) sum of
        # its x's, so solvers never need to branch on usage indicators.
        model.mark_implied_integer(*a.values())
        return a

    def _set_vars(self, model: Model):
        spec = self.spec
        n_sets = spec.effective_max_sets()
        w: Dict[Tuple[int, int], Var] = {}
        u: Dict[int, Var] = {}
        if not spec.flows:
            return w, u
        for s in range(n_sets):
            u[s] = model.add_binary(f"u_s{s}")
        for rank, f in enumerate(spec.flows):
            for s in range(n_sets):
                if s > rank:
                    continue  # symmetry breaking: flow #r uses sets 0..r
                w[(f.id, s)] = model.add_binary(f"w_f{f.id}_s{s}")
        for rank, f in enumerate(spec.flows):
            model.add_constr(
                quicksum(w[(f.id, s)] for s in range(n_sets) if (f.id, s) in w) == 1,
                f"one_set_f{f.id}",
            )
            for s in range(n_sets):
                if (f.id, s) in w:
                    model.add_constr(w[(f.id, s)] <= u[s], f"setused_f{f.id}_s{s}")
        for s in range(n_sets - 1):
            model.add_constr(u[s] >= u[s + 1], f"sets_ordered_{s}")
        return w, u

    def _segment_usage_vars(self, model: Model, a) -> Dict[Tuple[str, str], Var]:
        # One indicator per flow keeps the LP relaxation tight (the
        # aggregated big-M form `n*used >= sum(a)` relaxes to tiny
        # fractional `used` values and slows branch-and-bound badly).
        used: Dict[Tuple[str, str], Var] = {}
        for key in sorted(self.switch.segments):
            site: Site = ("seg", key)
            contributors = [a[(f.id, site)] for f in self.spec.flows if (f.id, site) in a]
            if not contributors:
                continue
            var = model.add_binary(f"used_{key[0]}__{key[1]}")
            for idx, contrib in enumerate(contributors):
                model.add_constr(var >= contrib, f"used_def_{key[0]}__{key[1]}_{idx}")
            used[key] = var
        # `used` only appears in >=-rows and the (minimized, nonnegative)
        # length objective, so it settles on max(a) — integral once the
        # a's are. Branching on it is never needed.
        model.mark_implied_integer(*used.values())
        return used

    # ------------------------------------------------------------------
    # constraints
    # ------------------------------------------------------------------
    def _path_assignment_constraints(self, model: Model, x, allowed) -> None:
        # (3.1) each flow chooses exactly one path
        for f in self.spec.flows:
            model.add_constr(
                quicksum(x[(f.id, p.index)] for p in allowed[f.id]) == 1,
                f"one_path_f{f.id}",
            )
        # (3.2) each path is chosen at most once
        by_path: Dict[int, List[Var]] = {}
        for (fid, pidx), var in x.items():
            by_path.setdefault(pidx, []).append(var)
        for pidx, vars_ in by_path.items():
            if len(vars_) > 1:
                model.add_constr(quicksum(vars_) <= 1, f"path_once_d{pidx}")

    def _binding_constraints(self, model: Model, y) -> None:
        # (3.9) every module binds to exactly one pin
        for m in self.spec.modules:
            model.add_constr(
                quicksum(y[(m, p)] for p in self.switch.pins) == 1, f"bind_{m}"
            )
        # (3.10) every pin is used by at most one module
        for p in self.switch.pins:
            model.add_constr(
                quicksum(y[(m, p)] for m in self.spec.modules) <= 1, f"pin_once_{p}"
            )

    def _coupling_constraints(self, model: Model, x, y, allowed) -> None:
        """Tie each flow's path endpoints to its modules' bound pins."""
        for f in self.spec.flows:
            starts: Dict[str, List[Var]] = {}
            ends: Dict[str, List[Var]] = {}
            for p in allowed[f.id]:
                starts.setdefault(p.source_pin, []).append(x[(f.id, p.index)])
                ends.setdefault(p.target_pin, []).append(x[(f.id, p.index)])
            for pin in self.switch.pins:
                s_expr = quicksum(starts.get(pin, []))
                model.add_constr(s_expr == y[(f.source, pin)], f"srcpin_f{f.id}_{pin}")
                e_expr = quicksum(ends.get(pin, []))
                model.add_constr(e_expr == y[(f.target, pin)], f"dstpin_f{f.id}_{pin}")

    def _contamination_constraints(self, model: Model, a, sites) -> None:
        spec = self.spec
        if not spec.conflicts:
            return
        if spec.conflict_form is ConflictForm.AGGREGATE:
            # the thesis' literal formula: one sum over the union of CF
            union = sorted({fid for pair in spec.conflicts for fid in pair})
            for site in sites:
                terms = [a[(fid, site)] for fid in union if (fid, site) in a]
                if len(terms) > 1:
                    model.add_constr(quicksum(terms) <= 1, f"cf_{_site_tag(site)}")
            return
        for pair in sorted(spec.conflicts, key=sorted):
            i, j = sorted(pair)
            for site in sites:
                ai = a.get((i, site))
                aj = a.get((j, site))
                if ai is None or aj is None:
                    continue
                model.add_constr(ai + aj <= 1, f"cf_{i}_{j}_{_site_tag(site)}")
        # Clique strengthening: for >= 3 mutually-conflicting flows the
        # pairwise rows admit the fractional point a_i = 1/2 everywhere;
        # one at-most-one row per maximal conflict clique per site cuts
        # it off without excluding any integral assignment.
        for ci, clique in enumerate(conflict_cliques(spec.conflicts)):
            for site in sites:
                terms = [a[(fid, site)] for fid in clique if (fid, site) in a]
                if len(terms) > 2:
                    model.add_constr(quicksum(terms) <= 1,
                                     f"cfclq{ci}_{_site_tag(site)}")

    def _scheduling_constraints(self, model: Model, a, w, sites) -> None:
        """No site is used by two different inlets within one flow set.

        Inlet identity is the *source module* (each source module owns
        exactly one inlet pin, so the partition is the same as the
        paper's per-inlet-pin counters, independent of binding).
        """
        spec = self.spec
        if len(spec.flows) < 2:
            return
        n_sets = spec.effective_max_sets()
        inlets = spec.inlet_modules
        if len(inlets) < 2:
            return
        flows_by_inlet = {m: [f for f in spec.flows if f.source == m] for m in inlets}

        if spec.scheduling_form is SchedulingForm.COMPACT:
            self._scheduling_compact(model, a, w, sites, n_sets, inlets, flows_by_inlet)
        else:
            self._scheduling_paper(model, a, w, sites, n_sets, inlets, flows_by_inlet)

    def _scheduling_paper(self, model, a, w, sites, n_sets, inlets, flows_by_inlet):
        """Eqs. (3.4)-(3.6): K/k/q' counters with per-site big-Ms.

        The thesis text states (3.4)-(3.6) only; on their own they do
        not force q' to 0 when the inlet uses the node, so we add the
        indicator's other side, ``k <= (1 - q')*N``, which the
        construction needs (documented in DESIGN.md).

        The paper writes all the big-Ms as N_Pins; the tightest valid
        constants are the counter ranges themselves — ``k`` is at most
        the inlet's eligible-flow count at the site/set and ``K`` their
        total — which keeps the LP relaxation close and is safe even
        when a case has more flows than pins.
        """
        for site in sites:
            relevant = [m for m in inlets
                        if any((f.id, site) in a for f in flows_by_inlet[m])]
            if len(relevant) < 2:
                continue
            tag = _site_tag(site)
            for s in range(n_sets):
                k_vars = {}
                k_ubs = {}
                for m in relevant:
                    terms = [
                        w[(f.id, s)] * a[(f.id, site)]
                        for f in flows_by_inlet[m]
                        if (f.id, site) in a and (f.id, s) in w
                    ]
                    if not terms:
                        continue
                    k = model.add_integer(f"k_{m}_{tag}_s{s}", 0, len(terms))
                    model.add_constr(k == quicksum(terms), f"kdef_{m}_{tag}_s{s}")
                    # kdef pins k to an integral sum: never branched on.
                    model.mark_implied_integer(k)
                    self._sched_handles["k"][(m, site, s)] = k
                    k_vars[m] = k
                    k_ubs[m] = len(terms)
                if len(k_vars) < 2:
                    continue
                K_ub = sum(k_ubs.values())
                K = model.add_integer(f"K_{tag}_s{s}", 0, K_ub)
                model.add_constr(K == quicksum(k_vars.values()), f"Kdef_{tag}_s{s}")
                self._sched_handles["K"][(site, s)] = K
                model.mark_implied_integer(K)
                for m, k in k_vars.items():
                    q = model.add_binary(f"qp_{m}_{tag}_s{s}")
                    self._sched_handles["q"][(m, site, s)] = q
                    m_k = k_ubs[m]
                    model.add_constr(k >= 1 - q, f"sched34_{m}_{tag}_s{s}")
                    model.add_constr(k <= K + q * m_k, f"sched35_{m}_{tag}_s{s}")
                    model.add_constr(k >= K - q * K_ub, f"sched36_{m}_{tag}_s{s}")
                    model.add_constr(k <= (1 - q) * m_k, f"schedind_{m}_{tag}_s{s}")

    def _scheduling_compact(self, model, a, w, sites, n_sets, inlets, flows_by_inlet):
        """Indicator encoding: b[m, site, s] >= w*a, sum_m b <= 1."""
        for site in sites:
            relevant = [m for m in inlets
                        if any((f.id, site) in a for f in flows_by_inlet[m])]
            if len(relevant) < 2:
                continue
            tag = _site_tag(site)
            for s in range(n_sets):
                b_vars = []
                for m in relevant:
                    prods = [
                        w[(f.id, s)] * a[(f.id, site)]
                        for f in flows_by_inlet[m]
                        if (f.id, site) in a and (f.id, s) in w
                    ]
                    if not prods:
                        continue
                    b = model.add_binary(f"b_{m}_{tag}_s{s}")
                    for idx, prod in enumerate(prods):
                        model.add_constr(b >= prod, f"bdef_{m}_{tag}_s{s}_{idx}")
                    self._sched_handles["b"][(m, site, s)] = b
                    b_vars.append(b)
                if len(b_vars) > 1:
                    model.add_constr(quicksum(b_vars) <= 1, f"sched_{tag}_s{s}")

    def _set_cover_cuts(self, model: Model, w, u, allowed) -> None:
        """Strengthen the set-count relaxation with collision cliques.

        A site every candidate path of a flow passes through is
        *mandatory* for that flow. Two flows from different source
        modules whose mandatory sites intersect can never share a flow
        set — whatever paths are chosen, some common site would be fed
        by two inlets, violating scheduling. Each maximal clique of such
        pairwise-colliding flows therefore needs one set per member:
        ``sum_f w[f, s] <= 1`` per set, and (with the ordered ``u``
        chain) ``u[s] >= 1`` for the first ``|clique|`` sets. Both rows
        are implied for every feasible integral point, so they only
        tighten the LP relaxation.
        """
        spec = self.spec
        if len(spec.flows) < 2 or not u:
            return
        mandatory: Dict[int, FrozenSet[Site]] = {}
        source_of: Dict[int, str] = {}
        for f in spec.flows:
            paths = allowed[f.id]
            if not paths:
                continue
            common = frozenset(self._path_sites(paths[0]))
            for p in paths[1:]:
                if not common:
                    break
                common = common & frozenset(self._path_sites(p))
            if common:
                mandatory[f.id] = common
                source_of[f.id] = f.source
        if len(mandatory) < 2:
            return
        ids = sorted(mandatory)
        pairs = {
            frozenset((i, j))
            for ai, i in enumerate(ids)
            for j in ids[ai + 1:]
            if source_of[i] != source_of[j] and mandatory[i] & mandatory[j]
        }
        if not pairs:
            return
        n_sets = spec.effective_max_sets()
        max_clique = 0
        for ci, clique in enumerate(conflict_cliques(pairs, min_size=2)):
            max_clique = max(max_clique, len(clique))
            for s in range(n_sets):
                terms = [w[(fid, s)] for fid in clique if (fid, s) in w]
                if len(terms) > 1:
                    model.add_constr(quicksum(terms) <= 1, f"cover_clq{ci}_s{s}")
        for s in range(min(max_clique, n_sets)):
            model.add_constr(u[s] >= 1, f"cover_minsets_{s}")

    def _rotation_symmetry_breaking(self, model: Model, y) -> None:
        """Exploit the switch's rotational symmetry.

        Rotating every pin by ``n_pins / rotation_order`` positions is a
        length-preserving automorphism compatible with the clockwise and
        unfixed policies, so every solution has a rotated twin of equal
        cost; restricting the first module to one fundamental arc of
        pins removes those duplicates without losing any optimum.
        """
        rot = self.switch.rotation_order
        if rot <= 1 or not self.spec.modules:
            return
        arc = self.switch.n_pins // rot
        first = self.spec.modules[0]
        model.add_constr(
            quicksum(
                y[(first, p)] for p in self.switch.pins
                if self.switch.pin_index(p) <= arc
            )
            == 1,
            "rot_symmetry",
        )

    def _fixed_constraints(self, model: Model, y) -> None:
        # (3.11) bind the specified module-pin pairs
        assert self.spec.fixed_binding is not None
        for m, p in sorted(self.spec.fixed_binding.items()):
            model.add_constr(y[(m, p)] == 1, f"fix_{m}_{p}")

    def _clockwise_constraints(self, model: Model, y, built: BuiltModel) -> None:
        # (3.12)-(3.13) modules appear clockwise around the switch
        spec = self.spec
        assert spec.module_order is not None
        order = spec.module_order
        n = self.switch.n_pins
        pin_vars: Dict[str, Var] = {}
        for m in spec.modules:
            pv = model.add_integer(f"pin_{m}", 1, n)
            model.add_constr(
                pv == quicksum(self.switch.pin_index(p) * y[(m, p)]
                               for p in self.switch.pins),
                f"pinidx_{m}",
            )
            pin_vars[m] = pv
        # pin indices equal a sum of binaries by definition: no branching.
        model.mark_implied_integer(*pin_vars.values())
        q_vars: Dict[str, Var] = {}
        for m in order:
            q_vars[m] = model.add_binary(f"qcw_{m}")
        if len(order) > 1:
            for idx, m_a in enumerate(order):
                m_b = order[(idx + 1) % len(order)]
                model.add_constr(
                    pin_vars[m_a] <= pin_vars[m_b] - 1 + q_vars[m_a] * n,
                    f"cw_{m_a}",
                )
        model.add_constr(quicksum(q_vars.values()) == 1, "cw_wrap")
        built.pin_index_var = pin_vars
        built.wrap_q = q_vars

    def _objective(self, model: Model, built: BuiltModel) -> None:
        spec = self.spec
        n_sets_expr = quicksum(built.u.values())
        length_expr = quicksum(
            self.switch.segments[key].length * var for key, var in built.used.items()
        )
        built.n_sets_expr = n_sets_expr
        built.length_expr = length_expr
        model.set_objective(spec.alpha * n_sets_expr + spec.beta * length_expr, "min")


def _site_tag(site: Site) -> str:
    kind, payload = site
    if kind == "node":
        return f"n_{payload}"
    a, b = payload  # type: ignore[misc]
    return f"e_{a}__{b}"

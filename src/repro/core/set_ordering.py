"""Flow-set ordering for minimal valve switching.

Flow sets execute sequentially, but the paper's model leaves their
*order* free. Since every transition between sets costs valve
actuations ("a smaller number of flow set indicates less changing of
valve status"), the order matters: consecutive sets with similar valve
configurations switch fewer valves.

This module finds the execution order that minimizes total valve state
changes — exhaustively for the small set counts real cases have, with
a nearest-neighbour heuristic beyond that. Contamination freedom is
order-independent (conflicting flows never share sites at all), so any
reordering stays valid; the verifier re-checks regardless.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.solution import SynthesisResult
from repro.core.valves import CLOSED, OPEN, analyze_valves
from repro.errors import ReproError

#: Exhaustive search bound: 7! = 5040 orders is still instant.
EXHAUSTIVE_LIMIT = 7


def _config(status: Dict, essential, step: int) -> Tuple[str, ...]:
    """The open/closed vector of the essential valves at one step
    (don't-care resolves to open — the removed-valve convention)."""
    return tuple(
        CLOSED if status[key][step] == CLOSED else OPEN
        for key in sorted(essential)
    )


def _transitions(a: Tuple[str, ...], b: Tuple[str, ...]) -> int:
    return sum(1 for x, y in zip(a, b) if x != y)


def count_valve_transitions(result: SynthesisResult) -> int:
    """Valve state changes across the result's current set order."""
    if result.valves is None or not result.valves.essential:
        return 0
    configs = [
        _config(result.valves.status, result.valves.essential, s)
        for s in range(len(result.flow_sets))
    ]
    return sum(_transitions(a, b) for a, b in zip(configs, configs[1:]))


def best_set_order(result: SynthesisResult) -> Tuple[List[int], int]:
    """The execution order of the flow sets minimizing transitions.

    Returns (permutation of set indices, transition count). Exhaustive
    for up to :data:`EXHAUSTIVE_LIMIT` sets, nearest-neighbour beyond.
    """
    if not result.status.solved or result.valves is None:
        raise ReproError("need a solved result with a valve analysis")
    n = len(result.flow_sets)
    if n <= 1 or not result.valves.essential:
        return list(range(n)), 0
    configs = [
        _config(result.valves.status, result.valves.essential, s)
        for s in range(n)
    ]

    if n <= EXHAUSTIVE_LIMIT:
        best_perm: Optional[Tuple[int, ...]] = None
        best_cost = float("inf")
        for perm in itertools.permutations(range(n)):
            cost = sum(
                _transitions(configs[a], configs[b])
                for a, b in zip(perm, perm[1:])
            )
            if cost < best_cost:
                best_cost = cost
                best_perm = perm
        assert best_perm is not None
        return list(best_perm), int(best_cost)

    # nearest-neighbour fallback for many sets
    remaining = set(range(1, n))
    order = [0]
    cost = 0
    while remaining:
        current = configs[order[-1]]
        nxt = min(remaining, key=lambda s: _transitions(current, configs[s]))
        cost += _transitions(current, configs[nxt])
        order.append(nxt)
        remaining.remove(nxt)
    return order, cost


def reorder_sets(result: SynthesisResult,
                 order: Sequence[int]) -> SynthesisResult:
    """A copy of the result with its flow sets re-ordered.

    The valve analysis (whose sequences are indexed by execution step)
    is recomputed for the new order; binding, paths and used segments
    are order-independent and shared.
    """
    import copy

    if sorted(order) != list(range(len(result.flow_sets))):
        raise ReproError("order must be a permutation of the set indices")
    clone = copy.copy(result)
    clone.flow_sets = [list(result.flow_sets[i]) for i in order]
    clone.valves = analyze_valves(result.spec.switch, result.flow_paths,
                                  clone.flow_sets)
    if result.pressure is not None and clone.valves.essential:
        from repro.core.pressure import share_pressure

        clone.pressure = share_pressure(
            clone.valves.status, valves=sorted(clone.valves.essential),
            method=result.pressure.method,
        )
    return clone


def optimize_set_order(result: SynthesisResult) -> SynthesisResult:
    """Reorder a solved result's sets for minimal valve switching."""
    order, _ = best_set_order(result)
    if order == list(range(len(result.flow_sets))):
        return result
    return reorder_sets(result, order)

"""The paper's primary contribution: contamination-free switch synthesis."""

from repro.core.builder import BuiltModel, SynthesisModelBuilder
from repro.core.pressure import (
    clique_cover_greedy,
    clique_cover_ilp,
    compatibility_graph,
    sequences_compatible,
    share_pressure,
)
from repro.core.solution import (
    PressureSharingResult,
    SynthesisResult,
    SynthesisStatus,
    ValveAnalysis,
)
from repro.core.spec import (
    BindingPolicy,
    ConflictForm,
    Flow,
    NodePolicy,
    SchedulingForm,
    SwitchSpec,
    conflict_pair,
)
from repro.core.heuristic import synthesize_greedy
from repro.core.set_ordering import (
    best_set_order,
    count_valve_transitions,
    optimize_set_order,
    reorder_sets,
)
from repro.core.synthesizer import (
    ERROR_POLICIES,
    SynthesisOptions,
    build_catalog,
    synthesize,
)
from repro.core.wash_fallback import WashFallbackResult, synthesize_with_wash_fallback
from repro.core.valves import analyze_valves
from repro.core.verify import verify_result

__all__ = [
    "Flow",
    "SwitchSpec",
    "conflict_pair",
    "BindingPolicy",
    "NodePolicy",
    "ConflictForm",
    "SchedulingForm",
    "SynthesisModelBuilder",
    "BuiltModel",
    "ERROR_POLICIES",
    "SynthesisOptions",
    "synthesize",
    "synthesize_greedy",
    "synthesize_with_wash_fallback",
    "WashFallbackResult",
    "best_set_order",
    "count_valve_transitions",
    "optimize_set_order",
    "reorder_sets",
    "build_catalog",
    "SynthesisResult",
    "SynthesisStatus",
    "ValveAnalysis",
    "PressureSharingResult",
    "analyze_valves",
    "share_pressure",
    "sequences_compatible",
    "compatibility_graph",
    "clique_cover_ilp",
    "clique_cover_greedy",
    "verify_result",
]

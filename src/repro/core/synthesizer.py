"""End-to-end switch synthesis (the paper's flow, §3–§4).

:func:`synthesize` drives the whole pipeline on one
:class:`~repro.core.spec.SwitchSpec`:

1. enumerate candidate shortest paths on the switch model;
2. build the IQP (:mod:`repro.core.builder`) and solve it;
3. extract routing, scheduling and binding; derive the used channels;
4. identify essential valves and their status sequences;
5. reduce the switch to the application-specific structure;
6. optionally group valves for pressure sharing (clique cover);
7. verify every invariant independently.

**Deadlines.** ``options.time_limit`` starts one
:class:`~repro.deadline.Deadline` for the whole pipeline; every
time-consuming phase receives the *remaining* budget, so the total wall
time is bounded by the limit plus the short non-interruptible tail
(extract / analyze / verify and at most one greedy fallback). In
particular the pressure-sharing clique-cover ILP — historically
unbounded — now gets whatever budget the main solve left over and falls
back to the greedy cover when that runs out.

**Degradation ladder.** ``options.on_error`` decides what a failure
costs:

* ``"raise"`` — solver crashes and verification failures propagate
  (timeouts still return a ``TIMEOUT`` result);
* ``"capture"`` — crashes come back as a ``status=ERROR`` result with
  the exception text in ``result.error``;
* ``"degrade"`` (default) — a crash *or* an empty timeout first retries
  with the validated greedy heuristic; if that solves, the result is
  ``FEASIBLE`` with ``counters["degraded"] == 1`` and the original
  failure recorded in ``result.error``, otherwise the run falls through
  to the capture behaviour.

A proven-infeasible model is a conclusive answer, never "degraded".
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.builder import BuiltModel, SynthesisModelBuilder
from repro.core.pressure import share_pressure
from repro.core.solution import SynthesisResult, SynthesisStatus
from repro.core.spec import BindingPolicy, SwitchSpec
from repro.core.valves import analyze_valves
from repro.core.verify import verify_result
from repro.deadline import Deadline
from repro.errors import ReproError, VerificationError
from repro.obs.trace import Tracer, current_tracer, obs_event, use_tracer
from repro.opt import SolveStatus
from repro.opt.incremental import SolveContext
from repro.opt.solvers import resolve_backend_name
from repro.perf import PerfRecorder
from repro.switches.paths import PathCatalog, enumerate_paths
from repro.switches.reduce import reduce_switch

#: Backends that can exploit a warm-start incumbent. HiGHS (scipy's
#: milp) has no incumbent-injection hook, so computing one for it would
#: be wasted work. Checked against the *base* name, so worker-count
#: specs like ``"parallel_bb:4"`` qualify too.
_WARM_BACKENDS = {"branch_bound", "parallel_bb", "portfolio", "backtrack"}

#: Valid values of :attr:`SynthesisOptions.on_error`.
ERROR_POLICIES = ("raise", "capture", "degrade")


@dataclass
class SynthesisOptions:
    """Tunables for a synthesis run."""

    backend: str = "auto"
    time_limit: Optional[float] = None
    mip_gap: float = 1e-4                   # Gurobi's default relative gap
    path_slack: float = 0.0                 # mm beyond the shortest path
    max_paths_per_pair: Optional[int] = None
    pressure_sharing: bool = True
    pressure_method: str = "ilp"            # or "greedy"
    verify: bool = True
    verbose: bool = False
    #: Seed warm-start-capable backends with the greedy heuristic's
    #: solution as the initial incumbent (never changes the optimum).
    heuristic_incumbent: bool = True
    #: Failure policy: "raise", "capture" or "degrade" (see the module
    #: docstring for the ladder semantics).
    on_error: str = "degrade"
    #: Optional :class:`repro.obs.Tracer` installed for the duration of
    #: the run: every phase becomes a span, the solver internals emit
    #: incumbent/cut/deadline events, and the result counters are folded
    #: into the tracer's metrics registry. ``None`` (the default) keeps
    #: tracing disabled at zero cost. Excluded from config fingerprints
    #: and equality — a tracer never changes what is computed.
    trace: Optional[Tracer] = field(default=None, compare=False, repr=False)
    #: Optional :class:`repro.store.Store`: the persistent solve cache
    #: consulted (Tier A exact results, Tier B warm artifacts) and
    #: populated by this run. ``None`` falls back to the ambient store
    #: (:func:`repro.store.active_store`), which is itself None unless
    #: installed or named by ``REPRO_STORE``. Like ``trace``, excluded
    #: from config fingerprints and equality — the cache never changes
    #: what is computed, only how fast (hits are re-verified by the
    #: independent checker before being trusted).
    store: Optional[Any] = field(default=None, compare=False, repr=False)
    #: Master switch for the persistent cache: False makes this run
    #: ignore any store (explicit or ambient) entirely — cold solve,
    #: no write-through. Excluded from fingerprints like ``store``.
    cache: bool = field(default=True, compare=False)


def build_catalog(spec: SwitchSpec, options: SynthesisOptions) -> PathCatalog:
    """Pre-enumerate the candidate paths for a spec (§3.1).

    Under the fixed policy only the bound pins can ever carry flows, so
    the catalog is restricted to them, which shrinks the model — the
    effect the paper observes as the much smaller fixed-policy runtime.
    """
    pins = None
    if spec.binding is BindingPolicy.FIXED and spec.fixed_binding:
        pins = sorted(set(spec.fixed_binding.values()))
    return enumerate_paths(
        spec.switch,
        pins=pins,
        slack=options.path_slack,
        max_paths_per_pair=options.max_paths_per_pair,
    )


def _context_key(spec: SwitchSpec, options: SynthesisOptions) -> Tuple:
    """The structural identity of a synthesis model.

    Everything that shapes the variables/constraints — but *not* the
    objective weights α/β, so weight sweeps hit the same cached model
    and only the objective is swapped.
    """
    return (
        spec.switch.structure_key(),
        tuple(spec.modules),
        tuple((f.id, f.source, f.target) for f in spec.flows),
        tuple(sorted(tuple(sorted(pair)) for pair in spec.conflicts)),
        spec.binding.value,
        tuple(sorted((spec.fixed_binding or {}).items())),
        tuple(spec.module_order or ()),
        spec.max_sets,
        spec.node_policy.value,
        spec.conflict_form.value,
        spec.scheduling_form.value,
        options.path_slack,
        options.max_paths_per_pair,
    )


def seed_context(spec: SwitchSpec, options: Optional[SynthesisOptions],
                 context: SolveContext, result: SynthesisResult) -> bool:
    """Pre-load ``context`` with an incumbent derived from ``result``.

    Builds (or reuses) the model for ``spec`` through the context and
    maps ``result``'s binding/routing/schedule onto its variables via
    :func:`repro.core.heuristic.model_assignment`. A later
    :func:`synthesize` call with the same spec/options/context then
    starts from this incumbent instead of the greedy heuristic — the
    seam the repair engine uses to carry a prior solution's surviving
    paths into the degraded re-solve. Returns False (and seeds nothing)
    when the result is not representable in the model, e.g. a routed
    path missing from the catalog. Warm starts are re-validated inside
    the solver, so a seed can speed the search up but never change the
    optimum.
    """
    from repro.core.heuristic import model_assignment

    options = options or SynthesisOptions()
    key = _context_key(spec, options)

    def _build() -> BuiltModel:
        catalog = build_catalog(spec, options)
        return SynthesisModelBuilder(spec, catalog).build()

    built = context.built_model(key, _build)
    assignment = model_assignment(built, result)
    if assignment is None:
        return False
    context.note_solution(
        key, {v.name: float(val) for v, val in assignment.items()})
    return True


def synthesize(spec: SwitchSpec,
               options: Optional[SynthesisOptions] = None,
               context: Optional[SolveContext] = None) -> SynthesisResult:
    """Synthesize an application-specific, contamination-free switch.

    ``context`` (optional) is a :class:`~repro.opt.incremental.SolveContext`
    shared across related calls: structurally identical specs reuse the
    built model (and its compiled arrays/cut pool), α/β re-weightings
    only swap the objective, and previous optima seed later solves as
    warm-start incumbents. Results are identical with or without a
    context — it only removes repeated work.

    ``options.time_limit`` bounds the *whole* pipeline (see the module
    docstring), and ``options.on_error`` selects the failure policy.

    A persistent :class:`repro.store.Store` (``options.store``, or the
    ambient one unless ``options.cache`` is False) short-circuits the
    whole pipeline when it holds this exact case ⊕ config (Tier A —
    the stored result is re-verified by the independent checker before
    being returned), warms up near-miss runs (Tier B — path catalogs
    and incumbents), and receives this run's artifacts for future
    callers. Results are identical with or without a store.
    """
    options = options or SynthesisOptions()
    if options.on_error not in ERROR_POLICIES:
        raise ReproError(
            f"unknown on_error policy {options.on_error!r}; "
            f"expected one of {ERROR_POLICIES}"
        )
    store = _resolve_store(options)
    start = time.perf_counter()
    deadline = Deadline(options.time_limit)
    recorder = PerfRecorder(spec.name)

    with ExitStack() as stack:
        if options.trace is not None:
            stack.enter_context(use_tracer(options.trace))
        tracer = current_tracer()
        if tracer is not None:
            stack.enter_context(tracer.span(
                "synthesize", case=spec.name, backend=options.backend,
                binding=spec.binding.value, time_limit=options.time_limit,
            ))
        result = store_key = None
        if store is not None:
            from repro.store import load_result, result_key

            store_key = result_key(spec, options)
            with recorder.phase("store"):
                result = load_result(store, store_key, spec)
            if result is not None:
                recorder.counters["store_hit"] = 1
                obs_event("cache_hit", kind="result", case=spec.name,
                          key=store_key[:16])
        if result is None:
            result = _run_pipeline(spec, options, context, deadline,
                                   recorder, store)
            if store is not None:
                # Write-through must never fail the solve it records.
                try:
                    from repro.store import store_result

                    if store_result(store, store_key, result):
                        recorder.counters["store_put"] = 1
                except Exception:
                    pass
        result.runtime = time.perf_counter() - start
        result.timings = recorder.timings
        result.counters = dict(recorder.counters)
        if tracer is not None:
            tracer.event("synthesis_result", case=spec.name,
                         status=result.status.value,
                         objective=result.objective,
                         runtime=round(result.runtime, 6))
            tracer.metrics.counter("synthesize_runs").inc()
            tracer.metrics.histogram("synthesize_seconds").observe(result.runtime)
            for name, value in result.counters.items():
                try:
                    tracer.metrics.counter(name).inc(int(value))
                except TypeError:
                    # The name is already registered as a gauge or
                    # histogram by a solver. A registry collision must
                    # never fail the synthesis that produced the
                    # result; the raw value is still in
                    # result.counters.
                    tracer.event("metric_kind_collision", name=name)
    return result


def _resolve_store(options: SynthesisOptions):
    """The persistent store this run uses (None when caching is off)."""
    if not options.cache:
        return None
    if options.store is not None:
        return options.store
    from repro.store import active_store

    return active_store()


def _run_pipeline(spec: SwitchSpec, options: SynthesisOptions,
                  context: Optional[SolveContext], deadline: Deadline,
                  recorder: PerfRecorder, store) -> SynthesisResult:
    """The exact pipeline under the degradation ladder.

    ``store`` (None when caching is disabled) is installed as the
    ambient store for the duration, so Tier-B consumers deeper in the
    stack — path enumeration, the parallel solver's pseudo-cost
    snapshots — see the same cache this run was configured with (and,
    with ``cache=False``, see none even if one is ambient).
    """
    from repro.store import use_store

    with use_store(store):
        try:
            result = _pipeline(spec, options, context, deadline,
                               recorder, store)
        except Exception as exc:  # the ladder: capture / degrade
            if options.on_error == "raise":
                raise
            result = _recover(spec, options, recorder,
                              failure=f"{type(exc).__name__}: {exc}",
                              timeout=False)
        else:
            if result.status is SynthesisStatus.TIMEOUT \
                    and options.on_error == "degrade":
                obs_event("deadline", where="synthesize",
                          budget=options.time_limit)
                result = _recover(
                    spec, options, recorder,
                    failure=(f"exact solve exhausted the {options.time_limit}s "
                             "budget with no incumbent"),
                    timeout=True,
                )
    return result


def _recover(spec: SwitchSpec, options: SynthesisOptions,
             recorder: PerfRecorder, failure: str,
             timeout: bool) -> SynthesisResult:
    """Lower rungs of the degradation ladder (degrade, then capture).

    ``degrade`` retries with the greedy heuristic — its solution is
    validated by the same independent verifier, so a degraded result is
    *correct*, merely non-optimal. When the heuristic dead-ends too, the
    original failure is reported: a ``TIMEOUT`` result for timeouts, a
    ``status=ERROR`` result carrying the exception text otherwise.
    """
    if options.on_error == "degrade":
        from repro.core.heuristic import synthesize_greedy

        obs_event("degrade", where="synthesize", reason=failure,
                  timeout=timeout)
        fallback: Optional[SynthesisResult] = None
        try:
            with recorder.phase("degrade"):
                fallback = synthesize_greedy(
                    spec, verify=options.verify,
                    pressure_sharing=options.pressure_sharing,
                )
        except Exception as exc:
            failure = (f"{failure}; greedy fallback failed: "
                       f"{type(exc).__name__}: {exc}")
        if fallback is not None and fallback.status.solved:
            recorder.counters["degraded"] = 1
            fallback.solver = "greedy(degraded)"
            fallback.error = failure
            return fallback
    status = SynthesisStatus.TIMEOUT if timeout else SynthesisStatus.ERROR
    return SynthesisResult(spec, status, error=failure)


def _pipeline(spec: SwitchSpec, options: SynthesisOptions,
              context: Optional[SolveContext], deadline: Deadline,
              recorder: PerfRecorder, store=None) -> SynthesisResult:
    """The exact pipeline: every phase runs on the remaining budget."""
    key = (_context_key(spec, options)
           if context is not None or store is not None else None)

    def _build() -> BuiltModel:
        with recorder.phase("catalog"):
            catalog = build_catalog(spec, options)
        with recorder.phase("build"):
            return SynthesisModelBuilder(spec, catalog).build()

    if context is None:
        built = _build()
    else:
        built = context.built_model(key, _build)
        if built.spec is not spec:
            if (built.spec.alpha, built.spec.beta) != (spec.alpha, spec.beta):
                with recorder.phase("build"):
                    built.model.set_objective(
                        spec.alpha * built.n_sets_expr
                        + spec.beta * built.length_expr,
                        "min",
                    )
            built.spec = spec

    # Warm-start incumbent: a previous optimum from the context if one
    # exists, else the greedy heuristic's solution. Either is validated
    # inside Model.solve and can only speed the search up. Skipped when
    # the deadline is already gone — the main solve needs every second.
    warm_values = None
    warm_source = "warm"
    memo_hit = (built.model._version, options.backend,
                float(options.mip_gap)) in built.model._solutions
    if not memo_hit and not deadline.expired() \
            and resolve_backend_name(options.backend).partition(":")[0] \
            in _WARM_BACKENDS:
        if context is not None:
            stored = context.incumbent(key)
            if stored is not None:
                mapped = {v: stored.get(v.name) for v in built.model.variables}
                if all(val is not None for val in mapped.values()):
                    warm_values, warm_source = mapped, "context"
        if warm_values is None and store is not None:
            # Tier B: a persisted optimum for the same structure (the
            # objective weights are excluded from the key, so weight
            # sweeps warm-start each other across processes). The
            # incumbent is validated inside Model.solve like any other
            # warm start — it can only speed the search up.
            stored = _load_stored_incumbent(store, key)
            if stored is not None:
                mapped = {v: stored.get(v.name) for v in built.model.variables}
                if all(val is not None for val in mapped.values()):
                    warm_values, warm_source = mapped, "store"
                    recorder.counters["store_warm_incumbent"] = 1
        if warm_values is None and options.heuristic_incumbent:
            from repro.core.heuristic import model_assignment, synthesize_greedy

            with recorder.phase("heuristic"):
                greedy = synthesize_greedy(spec, verify=False,
                                           pressure_sharing=False,
                                           time_limit=deadline.remaining())
                assignment = (model_assignment(built, greedy)
                              if greedy.status.solved else None)
            if assignment is not None:
                warm_values, warm_source = assignment, "heuristic"

    sol = built.model.solve(
        backend=options.backend,
        time_limit=deadline.remaining(),
        mip_gap=options.mip_gap,
        verbose=options.verbose,
        warm_start=warm_values,
        warm_source=warm_source,
    )
    # The model reports its own sub-phases (linearize/presolve/solve/...).
    recorder.timings.merge(sol.timings)
    recorder.counters.update(sol.counters)

    if sol.status is SolveStatus.OPTIMAL and sol.values is not None \
            and (context is not None or store is not None):
        values_by_name = {v.name: float(val) for v, val in sol.values.items()}
        if context is not None:
            context.note_solution(key, values_by_name)
        if store is not None:
            try:
                from repro.store import artifact_key, encode_incumbent

                store.put(artifact_key("incumbent", key), "incumbent",
                          encode_incumbent(values_by_name, sol.objective))
            except Exception:
                pass

    if sol.status is SolveStatus.INFEASIBLE:
        return SynthesisResult(spec, SynthesisStatus.NO_SOLUTION,
                               solver=sol.solver)
    if not sol.has_solution:
        return SynthesisResult(spec, SynthesisStatus.TIMEOUT,
                               solver=sol.solver)

    with recorder.phase("extract"):
        result = _extract(built, sol)
    result.status = (SynthesisStatus.OPTIMAL if sol.is_optimal
                     else SynthesisStatus.FEASIBLE)
    result.solver = sol.solver
    result.objective = sol.objective

    with recorder.phase("analyze"):
        result.valves = analyze_valves(
            spec.switch, result.flow_paths, result.flow_sets)
        result.reduced = reduce_switch(
            spec.switch, result.used_segments, result.valves.essential
        )
    if options.pressure_sharing and result.valves.essential:
        # The clique-cover ILP runs on whatever the main solve left
        # over and degrades to the greedy cover when that runs out, so
        # this phase can no longer blow through the time limit. Timed
        # as its own "pressure" phase so --profile shows it separately
        # from the pure valve analysis above.
        with recorder.phase("pressure"):
            result.pressure = share_pressure(
                result.valves.status,
                valves=sorted(result.valves.essential),
                method=options.pressure_method,
                backend=options.backend,
                time_limit=deadline.remaining(),
                on_timeout="greedy",
            )
        if result.pressure.degraded:
            recorder.counters["pressure_degraded"] = 1

    if options.verify:
        with recorder.phase("verify"):
            verify_result(result)
    return result


def _load_stored_incumbent(store, key: Tuple) -> Optional[Dict[str, float]]:
    """Tier B read of a persisted incumbent (None on miss/corruption)."""
    from repro.store import artifact_key, decode_incumbent

    skey = artifact_key("incumbent", key)
    payload = store.get(skey, "incumbent")
    if payload is None:
        return None
    try:
        return decode_incumbent(payload)
    except Exception:
        store.delete(skey)
        return None


def _extract(built: BuiltModel, sol) -> SynthesisResult:
    """Read routing / binding / scheduling out of a solved model."""
    spec = built.spec
    binding: Dict[str, str] = {}
    for (m, p), var in built.y.items():
        if sol.value(var) > 0.5:
            if m in binding:
                raise VerificationError(
                    f"module {m!r} bound to two pins in the solution")
            binding[m] = p

    flow_paths = {}
    paths_by_index = {p.index: p for p in built.catalog}
    for (fid, pidx), var in built.x.items():
        if sol.value(var) > 0.5:
            if fid in flow_paths:
                raise VerificationError(
                    f"flow {fid} assigned two paths in the solution")
            flow_paths[fid] = paths_by_index[pidx]
    # A feasibility claim with an unrouted flow is corrupted solver
    # output (the exactly-one-path constraint makes it impossible for an
    # honest solution); diagnose it here instead of crashing downstream.
    unrouted = sorted(f.id for f in spec.flows if f.id not in flow_paths)
    if unrouted:
        raise VerificationError(
            f"solution claims feasibility but assigns no path to "
            f"flow(s) {unrouted}")

    n_sets = spec.effective_max_sets()
    raw_sets: List[List[int]] = [[] for _ in range(n_sets)]
    for (fid, s), var in built.w.items():
        if sol.value(var) > 0.5:
            raw_sets[s].append(fid)
    flow_sets = [sorted(group) for group in raw_sets if group]
    scheduled = {fid for group in flow_sets for fid in group}
    unscheduled = sorted(f.id for f in spec.flows if f.id not in scheduled)
    if unscheduled:
        raise VerificationError(
            f"solution claims feasibility but schedules flow(s) "
            f"{unscheduled} into no flow set")

    used: set = set()
    for path in flow_paths.values():
        used.update(path.segments)

    return SynthesisResult(
        spec=spec,
        status=SynthesisStatus.OPTIMAL,
        binding=binding,
        flow_paths=flow_paths,
        flow_sets=flow_sets,
        used_segments=used,
    )

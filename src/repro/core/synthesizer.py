"""End-to-end switch synthesis (the paper's flow, §3–§4).

:func:`synthesize` drives the whole pipeline on one
:class:`~repro.core.spec.SwitchSpec`:

1. enumerate candidate shortest paths on the switch model;
2. build the IQP (:mod:`repro.core.builder`) and solve it;
3. extract routing, scheduling and binding; derive the used channels;
4. identify essential valves and their status sequences;
5. reduce the switch to the application-specific structure;
6. optionally group valves for pressure sharing (clique cover);
7. verify every invariant independently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.builder import BuiltModel, SynthesisModelBuilder
from repro.core.pressure import share_pressure
from repro.core.solution import SynthesisResult, SynthesisStatus
from repro.core.spec import BindingPolicy, SwitchSpec
from repro.core.valves import analyze_valves
from repro.core.verify import verify_result
from repro.errors import ReproError
from repro.opt import SolveStatus
from repro.perf import PerfRecorder
from repro.switches.paths import PathCatalog, enumerate_paths
from repro.switches.reduce import reduce_switch


@dataclass
class SynthesisOptions:
    """Tunables for a synthesis run."""

    backend: str = "auto"
    time_limit: Optional[float] = None
    mip_gap: float = 1e-4                   # Gurobi's default relative gap
    path_slack: float = 0.0                 # mm beyond the shortest path
    max_paths_per_pair: Optional[int] = None
    pressure_sharing: bool = True
    pressure_method: str = "ilp"            # or "greedy"
    verify: bool = True
    verbose: bool = False


def build_catalog(spec: SwitchSpec, options: SynthesisOptions) -> PathCatalog:
    """Pre-enumerate the candidate paths for a spec (§3.1).

    Under the fixed policy only the bound pins can ever carry flows, so
    the catalog is restricted to them, which shrinks the model — the
    effect the paper observes as the much smaller fixed-policy runtime.
    """
    pins = None
    if spec.binding is BindingPolicy.FIXED and spec.fixed_binding:
        pins = sorted(set(spec.fixed_binding.values()))
    return enumerate_paths(
        spec.switch,
        pins=pins,
        slack=options.path_slack,
        max_paths_per_pair=options.max_paths_per_pair,
    )


def synthesize(spec: SwitchSpec,
               options: Optional[SynthesisOptions] = None) -> SynthesisResult:
    """Synthesize an application-specific, contamination-free switch."""
    options = options or SynthesisOptions()
    start = time.perf_counter()
    recorder = PerfRecorder(spec.name)

    with recorder.phase("catalog"):
        catalog = build_catalog(spec, options)
    with recorder.phase("build"):
        built = SynthesisModelBuilder(spec, catalog).build()
    sol = built.model.solve(
        backend=options.backend,
        time_limit=options.time_limit,
        mip_gap=options.mip_gap,
        verbose=options.verbose,
    )
    # The model reports its own sub-phases (linearize/presolve/solve/...).
    recorder.timings.merge(sol.timings)
    runtime = time.perf_counter() - start

    if sol.status is SolveStatus.INFEASIBLE:
        result = SynthesisResult(spec, SynthesisStatus.NO_SOLUTION,
                                 runtime=runtime, solver=sol.solver)
        result.timings = recorder.timings
        return result
    if not sol.has_solution:
        result = SynthesisResult(spec, SynthesisStatus.TIMEOUT,
                                 runtime=runtime, solver=sol.solver)
        result.timings = recorder.timings
        return result

    with recorder.phase("extract"):
        result = _extract(built, sol)
    result.status = (SynthesisStatus.OPTIMAL if sol.is_optimal
                     else SynthesisStatus.FEASIBLE)
    result.solver = sol.solver
    result.objective = sol.objective

    with recorder.phase("analyze"):
        result.valves = analyze_valves(
            spec.switch, result.flow_paths, result.flow_sets)
        result.reduced = reduce_switch(
            spec.switch, result.used_segments, result.valves.essential
        )
        if options.pressure_sharing and result.valves.essential:
            result.pressure = share_pressure(
                result.valves.status,
                valves=sorted(result.valves.essential),
                method=options.pressure_method,
                backend=options.backend,
            )

    if options.verify:
        with recorder.phase("verify"):
            verify_result(result)
    result.runtime = time.perf_counter() - start
    result.timings = recorder.timings
    return result


def _extract(built: BuiltModel, sol) -> SynthesisResult:
    """Read routing / binding / scheduling out of a solved model."""
    spec = built.spec
    binding: Dict[str, str] = {}
    for (m, p), var in built.y.items():
        if sol.value(var) > 0.5:
            if m in binding:
                raise ReproError(f"module {m!r} bound to two pins in the solution")
            binding[m] = p

    flow_paths = {}
    paths_by_index = {p.index: p for p in built.catalog}
    for (fid, pidx), var in built.x.items():
        if sol.value(var) > 0.5:
            if fid in flow_paths:
                raise ReproError(f"flow {fid} assigned two paths in the solution")
            flow_paths[fid] = paths_by_index[pidx]

    n_sets = spec.effective_max_sets()
    raw_sets: List[List[int]] = [[] for _ in range(n_sets)]
    for (fid, s), var in built.w.items():
        if sol.value(var) > 0.5:
            raw_sets[s].append(fid)
    flow_sets = [sorted(group) for group in raw_sets if group]

    used: set = set()
    for path in flow_paths.values():
        used.update(path.segments)

    return SynthesisResult(
        spec=spec,
        status=SynthesisStatus.OPTIMAL,
        binding=binding,
        flow_paths=flow_paths,
        flow_sets=flow_sets,
        used_segments=used,
    )

"""Essential-valve identification and valve status sequences (§3.5).

A valve's status in a flow set is determined by the routed paths:

* **O (open)** — some flow of the set traverses the valve's segment;
* **C (closed)** — no flow of the set traverses the segment, but some
  flow passes one of its endpoint vertices, so the valve must close to
  keep fluid from leaking into the segment;
* **X (don't care)** — no flow of the set comes near the segment.

A valve whose sequence never contains C "can always be at the open
status": removing it does not affect routing, so it is *unnecessary*
(the paper's C-R example in Figure 3.1b). The remaining valves are the
*essential* ones kept in the application-specific switch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.core.solution import ValveAnalysis
from repro.switches.base import SwitchModel, segment_key
from repro.switches.paths import Path

OPEN = "O"
CLOSED = "C"
DONT_CARE = "X"


def analyze_valves(
    switch: SwitchModel,
    flow_paths: Dict[int, Path],
    flow_sets: List[List[int]],
) -> ValveAnalysis:
    """Compute status sequences and the essential-valve set.

    Only valves on *used* segments are considered; valves on removed
    segments disappear together with their channel.
    """
    used: Set[Tuple[str, str]] = set()
    for path in flow_paths.values():
        used.update(path.segments)

    analysis = ValveAnalysis()
    for key in sorted(used):
        if key not in switch.valves:
            continue  # segment drawn without a valve (e.g. a spine)
        sequence = []
        a, b = key
        for group in flow_sets:
            paths = [flow_paths[fid] for fid in group]
            if any(key in p.segments for p in paths):
                sequence.append(OPEN)
            elif any(a in p.vertices or b in p.vertices for p in paths):
                sequence.append(CLOSED)
            else:
                sequence.append(DONT_CARE)
        analysis.status[key] = sequence
        if CLOSED in sequence:
            analysis.essential.add(key)
    return analysis


def carried_inlets(
    switch: SwitchModel,
    flow_paths: Dict[int, Path],
    sources: Dict[int, str],
    key: Tuple[str, str],
) -> Set[str]:
    """Inlet modules whose flows the valve on ``key`` carries.

    This is the quantity the paper's §3.5 narrative uses ("the valve on
    segment C-R carries the flows 2 and 3, coming from the inlet pins
    R2 and L1"); exposed for analyses and tests.
    """
    return {
        sources[fid]
        for fid, path in flow_paths.items()
        if segment_key(*key) in path.segments
    }

"""Synthesis input specification (the paper's problem input, §2.3).

A :class:`SwitchSpec` carries exactly what the paper's formulation
takes as input:

* all flows to be executed (source module → target module),
* the conflicting flow pairs,
* the binding policy (fixed / clockwise / unfixed) plus its data
  (fixed module→pin map, or the clockwise module order),
* the switch model to synthesize from, and
* the objective weights α (number of flow sets) and β (channel length).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import SpecError
from repro.switches import CrossbarSwitch, SwitchModel


class BindingPolicy(enum.Enum):
    """Module-to-pin binding policies (§3.4)."""

    FIXED = "fixed"
    CLOCKWISE = "clockwise"
    UNFIXED = "unfixed"


class NodePolicy(enum.Enum):
    """Which intersections count as nodes for the constraints.

    ``PAPER`` restricts to the major nodes the paper names (centers and
    arms, e.g. ``{C, T, R, B, L}`` on the 8-pin switch). ``ALL``
    additionally counts the corner intersections — the strict (default)
    interpretation, since corners are genuine channel crossings.
    """

    PAPER = "paper"
    ALL = "all"


class ConflictForm(enum.Enum):
    """How eq. (3.3) is stated.

    ``PAIRWISE`` forbids each conflicting *pair* from sharing a site —
    the stated semantics and our default. ``AGGREGATE`` is the literal
    formula of the thesis (a single sum over the union of all
    conflicting flows), which is stricter than the stated semantics.
    """

    PAIRWISE = "pairwise"
    AGGREGATE = "aggregate"


class SchedulingForm(enum.Enum):
    """Encoding of the flow-set constraints (§3.3).

    ``PAPER`` implements the K / k / q′ counter construction of
    eqs. (3.4)–(3.6); ``COMPACT`` uses an equivalent, smaller indicator
    encoding (one binary per inlet/site/set). Both give identical
    optima; the benchmark suite compares their solve times.
    """

    PAPER = "paper"
    COMPACT = "compact"


@dataclass(frozen=True)
class Flow:
    """A fluid transportation task through the switch."""

    id: int
    source: str
    target: str

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise SpecError(f"flow {self.id}: source and target module are identical")

    def __str__(self) -> str:
        return f"flow{self.id}({self.source}->{self.target})"


def conflict_pair(a: int, b: int) -> FrozenSet[int]:
    """Canonical unordered conflict pair of two flow ids."""
    if a == b:
        raise SpecError(f"flow {a} cannot conflict with itself")
    return frozenset((a, b))


@dataclass
class SwitchSpec:
    """Full synthesis input. Validated eagerly via :meth:`validate`."""

    switch: SwitchModel
    modules: List[str]
    flows: List[Flow]
    conflicts: Set[FrozenSet[int]] = field(default_factory=set)
    binding: BindingPolicy = BindingPolicy.UNFIXED
    fixed_binding: Optional[Dict[str, str]] = None       # module -> pin
    module_order: Optional[List[str]] = None             # clockwise policy
    alpha: float = 1.0
    beta: float = 100.0
    max_sets: Optional[int] = None
    node_policy: NodePolicy = NodePolicy.ALL
    conflict_form: ConflictForm = ConflictForm.PAIRWISE
    scheduling_form: SchedulingForm = SchedulingForm.PAPER
    #: Flows from one inlet module carry the same physical fluid, so a
    #: conflict between two flows is really a conflict between their
    #: fluids. When True (default) the conflict set is closed over
    #: inlets — if any flow of inlet A conflicts with any flow of inlet
    #: B, all A-B flow pairs conflict. Disable for the paper's literal
    #: flow-pair semantics (the execution simulator will then flag the
    #: physically inconsistent solutions such inputs permit).
    enforce_fluid_consistency: bool = True
    name: str = "switch-case"

    def __post_init__(self) -> None:
        if self.enforce_fluid_consistency:
            self.conflicts = self._closed_conflicts()
        self.validate()

    def _closed_conflicts(self) -> Set[FrozenSet[int]]:
        by_id = {f.id: f for f in self.flows}
        inlet_pairs: Set[FrozenSet[str]] = set()
        for pair in self.conflicts:
            ids = sorted(pair)
            if len(ids) != 2 or any(i not in by_id for i in ids):
                return set(self.conflicts)  # let validate() report it
            inlet_pairs.add(frozenset((by_id[ids[0]].source,
                                       by_id[ids[1]].source)))
        closed: Set[FrozenSet[int]] = set(self.conflicts)
        for a in self.flows:
            for b in self.flows:
                if a.id < b.id and frozenset((a.source, b.source)) in inlet_pairs:
                    closed.add(frozenset((a.id, b.id)))
        return closed

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if len(set(self.modules)) != len(self.modules):
            raise SpecError("module names must be unique")
        if len(self.modules) > self.switch.n_pins:
            raise SpecError(
                f"{len(self.modules)} modules exceed the {self.switch.n_pins} pins "
                f"of {self.switch.name}"
            )
        known = set(self.modules)
        ids = [f.id for f in self.flows]
        if len(set(ids)) != len(ids):
            raise SpecError("flow ids must be unique")

        sources: Set[str] = set()
        targets: Set[str] = set()
        for f in self.flows:
            for end in (f.source, f.target):
                if end not in known:
                    raise SpecError(f"{f} references unknown module {end!r}")
            sources.add(f.source)
            targets.add(f.target)
        # The paper's default settings (§4.2): a module is either an
        # inlet or an outlet of the switch, and each outlet is accessed
        # at most once.
        both = sources & targets
        if both:
            raise SpecError(
                f"modules {sorted(both)} are used both as inlet and outlet; "
                "the switch model requires each module to be one or the other"
            )
        seen_targets: Set[str] = set()
        for f in self.flows:
            if f.target in seen_targets:
                raise SpecError(
                    f"outlet module {f.target!r} receives more than one flow; "
                    "each outlet pin can be accessed at most once"
                )
            seen_targets.add(f.target)

        by_id = {f.id: f for f in self.flows}
        for pair in self.conflicts:
            if len(pair) != 2:
                raise SpecError(f"conflict {set(pair)} must contain exactly two flow ids")
            for fid in pair:
                if fid not in by_id:
                    raise SpecError(f"conflict references unknown flow id {fid}")
            a, b = sorted(pair)
            if by_id[a].source == by_id[b].source:
                raise SpecError(
                    f"flows {a} and {b} conflict but share inlet {by_id[a].source!r}: "
                    "branches of the same fluid cannot contaminate each other"
                )

        if self.binding is BindingPolicy.FIXED:
            if not self.fixed_binding:
                raise SpecError("fixed binding policy requires a module->pin map")
            if set(self.fixed_binding) != known:
                raise SpecError("fixed binding must map every connected module")
            pins = list(self.fixed_binding.values())
            if len(set(pins)) != len(pins):
                raise SpecError("fixed binding assigns one pin to several modules")
            for pin in pins:
                if not self.switch.is_pin(pin):
                    raise SpecError(f"fixed binding references unknown pin {pin!r}")
        elif self.binding is BindingPolicy.CLOCKWISE:
            if not self.module_order:
                raise SpecError("clockwise binding policy requires a module order")
            if sorted(self.module_order) != sorted(self.modules):
                raise SpecError("clockwise module order must be a permutation of the modules")

        if self.alpha < 0 or self.beta < 0:
            raise SpecError("objective weights must be non-negative")
        if self.max_sets is not None and self.max_sets < 1 and self.flows:
            raise SpecError("max_sets must be at least 1")

    # ------------------------------------------------------------------
    @property
    def flow_ids(self) -> List[int]:
        return [f.id for f in self.flows]

    @property
    def inlet_modules(self) -> List[str]:
        """Source modules in first-appearance order."""
        seen: List[str] = []
        for f in self.flows:
            if f.source not in seen:
                seen.append(f.source)
        return seen

    @property
    def outlet_modules(self) -> List[str]:
        seen: List[str] = []
        for f in self.flows:
            if f.target not in seen:
                seen.append(f.target)
        return seen

    def flow(self, fid: int) -> Flow:
        for f in self.flows:
            if f.id == fid:
                return f
        raise SpecError(f"no flow with id {fid}")

    def conflicts_of(self, fid: int) -> List[int]:
        """Ids of flows conflicting with the given flow."""
        out = []
        for pair in self.conflicts:
            if fid in pair:
                out.append(next(iter(pair - {fid})))
        return sorted(out)

    def effective_max_sets(self) -> int:
        """Upper bound on the number of flow sets in the model.

        One set per flow is always sufficient (each flow alone is
        trivially collision-free), so the model never needs more.
        """
        if self.max_sets is not None:
            return min(self.max_sets, max(len(self.flows), 1))
        return max(len(self.flows), 1)

    def summary(self) -> str:
        return (
            f"{self.name}: {len(self.modules)} modules, {len(self.flows)} flows, "
            f"{len(self.conflicts)} conflicts, {self.switch.size_label}, "
            f"{self.binding.value} binding"
        )

"""Independent verification of synthesis results.

The paper's headline claim is that synthesized switches are *always*
contamination-free. This module re-derives every invariant directly
from the raw solution data (paths, sets, binding) without trusting the
optimizer, and raises :class:`~repro.errors.VerificationError` on any
violation. The test-suite and every benchmark run the verifier on every
solved case.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.spec import BindingPolicy, NodePolicy, SwitchSpec
from repro.core.solution import SynthesisResult
from repro.core.valves import CLOSED, OPEN, analyze_valves
from repro.errors import VerificationError
from repro.switches.base import segment_key
from repro.switches.paths import Path


def verify_result(result: SynthesisResult) -> None:
    """Run every check on a solved synthesis result."""
    if not result.status.solved:
        raise VerificationError("cannot verify an unsolved result")
    spec = result.spec
    verify_binding(spec, result.binding)
    verify_paths(spec, result.binding, result.flow_paths)
    verify_contamination_freedom(spec, result.flow_paths)
    verify_schedule(spec, result.flow_paths, result.flow_sets)
    verify_used_segments(result)
    verify_valves(result)


# ----------------------------------------------------------------------
# binding
# ----------------------------------------------------------------------
def verify_binding(spec: SwitchSpec, binding: Dict[str, str]) -> None:
    """Binding is a valid injection honoring the chosen policy."""
    if set(binding) != set(spec.modules):
        raise VerificationError("binding does not cover exactly the connected modules")
    pins = list(binding.values())
    if len(set(pins)) != len(pins):
        raise VerificationError("two modules bound to the same pin")
    for pin in pins:
        if not spec.switch.is_pin(pin):
            raise VerificationError(f"binding references unknown pin {pin!r}")

    if spec.binding is BindingPolicy.FIXED:
        assert spec.fixed_binding is not None
        for m, p in spec.fixed_binding.items():
            if binding[m] != p:
                raise VerificationError(
                    f"fixed binding violated: module {m!r} on pin {binding[m]!r}, "
                    f"expected {p!r}"
                )
    elif spec.binding is BindingPolicy.CLOCKWISE:
        assert spec.module_order is not None
        indices = [spec.switch.pin_index(binding[m]) for m in spec.module_order]
        if len(indices) > 1:
            descents = sum(
                1 for i in range(len(indices))
                if indices[i] >= indices[(i + 1) % len(indices)]
            )
            if descents != 1:
                raise VerificationError(
                    f"clockwise order violated: pin indices {indices} for order "
                    f"{spec.module_order} wrap {descents} times (expected exactly 1)"
                )


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
def verify_paths(spec: SwitchSpec, binding: Dict[str, str],
                 flow_paths: Dict[int, Path]) -> None:
    """Each flow is routed pin-to-pin consistently with the binding."""
    if set(flow_paths) != set(spec.flow_ids):
        raise VerificationError("routed flows do not match the specified flows")
    for f in spec.flows:
        path = flow_paths[f.id]
        if path.source_pin != binding[f.source]:
            raise VerificationError(
                f"{f}: path starts at {path.source_pin}, but {f.source!r} "
                f"is bound to {binding[f.source]}"
            )
        if path.target_pin != binding[f.target]:
            raise VerificationError(
                f"{f}: path ends at {path.target_pin}, but {f.target!r} "
                f"is bound to {binding[f.target]}"
            )
        # path integrity: consecutive vertices joined by real, healthy
        # segments — a masked valve/segment must never be routed over,
        # even if the path object predates the fault
        mask = spec.switch.health
        for a, b in zip(path.vertices, path.vertices[1:]):
            if mask is not None and segment_key(a, b) in mask.dead_segments:
                raise VerificationError(
                    f"{f}: path uses masked segment {a}-{b} "
                    f"({mask.kind_of(a, b)})"
                )
            if segment_key(a, b) not in spec.switch.segments:
                raise VerificationError(f"{f}: path uses non-existent segment {a}-{b}")
        if len(set(path.vertices)) != len(path.vertices):
            raise VerificationError(f"{f}: path revisits a vertex")
    # eq. (3.2): a candidate path serves at most one flow
    indices = [p.index for p in flow_paths.values()]
    if len(set(indices)) != len(indices):
        raise VerificationError("two flows assigned to the same candidate path")


def _constraint_nodes(spec: SwitchSpec, path: Path) -> Set[str]:
    if spec.node_policy is NodePolicy.PAPER:
        return set(path.major_nodes(spec.switch))
    return set(path.nodes)


def verify_contamination_freedom(spec: SwitchSpec,
                                 flow_paths: Dict[int, Path]) -> None:
    """Conflicting flows share no node and no segment (eq. 3.3).

    Checked with the strict (all intersections) node set regardless of
    the spec's node policy when possible — under the PAPER policy only
    the paper's node set plus segments are enforced, and that is what
    is checked.
    """
    for pair in spec.conflicts:
        i, j = sorted(pair)
        pi, pj = flow_paths[i], flow_paths[j]
        shared_nodes = _constraint_nodes(spec, pi) & _constraint_nodes(spec, pj)
        if shared_nodes:
            raise VerificationError(
                f"conflicting flows {i} and {j} share node(s) {sorted(shared_nodes)}"
            )
        shared_segs = set(pi.segments) & set(pj.segments)
        if shared_segs:
            raise VerificationError(
                f"conflicting flows {i} and {j} share segment(s) {sorted(shared_segs)}"
            )


# ----------------------------------------------------------------------
# scheduling
# ----------------------------------------------------------------------
def verify_schedule(spec: SwitchSpec, flow_paths: Dict[int, Path],
                    flow_sets: List[List[int]]) -> None:
    """Flow sets partition the flows; one inlet per site per set."""
    scheduled = [fid for group in flow_sets for fid in group]
    if sorted(scheduled) != sorted(spec.flow_ids):
        raise VerificationError("flow sets do not partition the flows")
    if any(not group for group in flow_sets):
        raise VerificationError("empty flow set reported")

    source_of = {f.id: f.source for f in spec.flows}
    for s, group in enumerate(flow_sets):
        site_owner: Dict[object, str] = {}
        for fid in group:
            path = flow_paths[fid]
            inlet = source_of[fid]
            sites = [("node", n) for n in _constraint_nodes(spec, path)]
            sites += [("seg", k) for k in path.segments]
            for site in sites:
                owner = site_owner.get(site)
                if owner is None:
                    site_owner[site] = inlet
                elif owner != inlet:
                    raise VerificationError(
                        f"flow set {s}: site {site} used by inlets "
                        f"{owner!r} and {inlet!r} simultaneously"
                    )


# ----------------------------------------------------------------------
# channels and valves
# ----------------------------------------------------------------------
def verify_used_segments(result: SynthesisResult) -> None:
    """Reported used segments equal the union of the routed paths."""
    derived: Set[Tuple[str, str]] = set()
    for path in result.flow_paths.values():
        derived.update(path.segments)
    if derived != set(result.used_segments):
        raise VerificationError("used-segment set inconsistent with routed paths")
    if result.reduced is not None:
        if set(result.reduced.used_segments) != derived:
            raise VerificationError("reduced switch keeps wrong segments")


def verify_valves(result: SynthesisResult) -> None:
    """Valve statuses match an independent recomputation; essential set
    is exactly the valves that must close at least once."""
    if result.valves is None:
        return
    fresh = analyze_valves(result.spec.switch, result.flow_paths, result.flow_sets)
    if fresh.status != result.valves.status:
        raise VerificationError("valve status table inconsistent with paths/sets")
    if fresh.essential != result.valves.essential:
        raise VerificationError("essential valve set inconsistent with status table")
    for key, seq in fresh.status.items():
        if key not in fresh.essential and CLOSED in seq:
            raise VerificationError(f"valve {key} must close but is not essential")
    # leak-freedom: in every set, every used segment adjacent to an
    # active vertex either carries a flow of the set or has a CLOSED valve
    for s, group in enumerate(result.flow_sets):
        paths = [result.flow_paths[fid] for fid in group]
        active_vertices = {v for p in paths for v in p.vertices}
        traversed = {k for p in paths for k in p.segments}
        for key in result.used_segments:
            if key in traversed:
                continue
            a, b = key
            if a in active_vertices or b in active_vertices:
                if key not in fresh.status or fresh.status[key][s] != CLOSED:
                    raise VerificationError(
                        f"flow set {s}: segment {key} can leak (no closed valve)"
                    )

"""Wash-fallback synthesis: a constructive answer to "no solution".

Table 4.1 reports *no solution* for the restricted binding policies on
the conflict-heavy cases — the switch simply cannot keep those fluids
apart. The alternative school (the paper's reference [9]) accepts
shared channels and inserts *wash operations* between conflicting uses.

:func:`synthesize_with_wash_fallback` combines both: it first runs the
exact contamination-free synthesis; only if that is infeasible does it
re-solve *without* the contamination constraints, fully serializes the
conflicting flows, and derives the wash phases that make the shared
channels safe. The result quantifies exactly what the proposed switch
saves: a contamination-free design needs zero washes, the fallback
needs ``wash_plan.num_phases`` of them.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional

from repro.analysis.washing import WashPlan, wash_plan
from repro.core.solution import SynthesisResult, SynthesisStatus
from repro.core.spec import SwitchSpec
from repro.core.synthesizer import SynthesisOptions, synthesize
from repro.errors import ReproError
from repro.sim.engine import fluid_conflicts_of


@dataclass
class WashFallbackResult:
    """Outcome of contamination-free-first, wash-fallback-second."""

    result: SynthesisResult
    used_fallback: bool
    washes: WashPlan

    @property
    def contamination_free(self) -> bool:
        return not self.used_fallback

    def summary(self) -> str:
        if not self.result.status.solved:
            return f"{self.result.spec.name}: {self.result.status.value}"
        if self.contamination_free:
            return (f"{self.result.spec.name}: contamination-free design, "
                    f"0 wash operations needed")
        return (f"{self.result.spec.name}: wash-fallback design, "
                f"{self.washes.num_phases} wash phase(s) over "
                f"{self.washes.total_washed_sites} site(s)")


def _relaxed_spec(spec: SwitchSpec) -> SwitchSpec:
    """The same case without contamination constraints.

    Scheduling still applies (flows from different inlets never run in
    parallel over shared sites), so the only remaining hazard is the
    residue between sets — which washing addresses.
    """
    clone = copy.copy(spec)
    clone.conflicts = set()
    return clone


def _serialize_conflicting(result: SynthesisResult,
                           spec: SwitchSpec) -> None:
    """Split sets so conflicting flows never execute together.

    The relaxed model may have grouped conflicting flows whose paths
    happen to be disjoint; washing only helps *between* executions, so
    each conflicting flow gets its own slot within its set.
    """
    new_sets = []
    for group in result.flow_sets:
        remaining = list(group)
        while remaining:
            slot = []
            for fid in list(remaining):
                if all(frozenset((fid, other)) not in spec.conflicts
                       for other in slot):
                    slot.append(fid)
                    remaining.remove(fid)
            new_sets.append(sorted(slot))
    result.flow_sets = new_sets


def synthesize_with_wash_fallback(
    spec: SwitchSpec,
    options: Optional[SynthesisOptions] = None,
) -> WashFallbackResult:
    """Exact contamination-free synthesis, wash-based plan B."""
    options = options or SynthesisOptions()
    exact = synthesize(spec, options)
    if exact.status.solved:
        plan = wash_plan(
            exact.flow_paths, exact.flow_sets,
            {f.id: f.source for f in spec.flows},
            fluid_conflicts_of(spec),
        )
        if not plan.is_wash_free:
            raise ReproError("contamination-free synthesis needed washes")
        return WashFallbackResult(exact, used_fallback=False, washes=plan)
    if exact.status is not SynthesisStatus.NO_SOLUTION:
        return WashFallbackResult(exact, used_fallback=False,
                                  washes=WashPlan())

    relaxed = synthesize(_relaxed_spec(spec), options)
    if not relaxed.status.solved:
        return WashFallbackResult(relaxed, used_fallback=True,
                                  washes=WashPlan())
    _serialize_conflicting(relaxed, spec)
    # the split schedule changes which valves must close: recompute the
    # valve analysis, reduction and pressure sharing for the new sets
    from repro.core.pressure import share_pressure
    from repro.core.valves import analyze_valves
    from repro.core.verify import verify_result
    from repro.switches.reduce import reduce_switch

    relaxed.valves = analyze_valves(relaxed.spec.switch, relaxed.flow_paths,
                                    relaxed.flow_sets)
    relaxed.reduced = reduce_switch(relaxed.spec.switch,
                                    relaxed.used_segments,
                                    relaxed.valves.essential)
    if options.pressure_sharing and relaxed.valves.essential:
        relaxed.pressure = share_pressure(
            relaxed.valves.status, valves=sorted(relaxed.valves.essential),
            method=options.pressure_method, backend=options.backend,
        )
    else:
        relaxed.pressure = None
    if options.verify:
        verify_result(relaxed)
    plan = wash_plan(
        relaxed.flow_paths, relaxed.flow_sets,
        {f.id: f.source for f in spec.flows},
        fluid_conflicts_of(spec),
    )
    return WashFallbackResult(relaxed, used_fallback=True, washes=plan)

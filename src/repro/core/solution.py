"""Synthesis result types (the paper's problem output, §2.3)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.spec import SwitchSpec
from repro.perf import PhaseTimings
from repro.switches.paths import Path
from repro.switches.reduce import ReducedSwitch


class SynthesisStatus(enum.Enum):
    """Outcome of a synthesis run."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"        # incumbent found but optimality unproven
    NO_SOLUTION = "no solution"  # proven infeasible (as in Table 4.1)
    TIMEOUT = "timeout"          # stopped with no incumbent
    ERROR = "error"              # captured crash (on_error="capture")

    @property
    def solved(self) -> bool:
        return self in (SynthesisStatus.OPTIMAL, SynthesisStatus.FEASIBLE)


@dataclass
class ValveAnalysis:
    """Essential-valve identification and per-set status sequences (§3.5).

    ``status`` maps every valve on a *used* segment to its sequence over
    the flow sets, each entry one of ``"O"`` (open), ``"C"`` (closed) or
    ``"X"`` (don't care). A valve is *essential* iff it must close in at
    least one flow set.
    """

    status: Dict[Tuple[str, str], List[str]] = field(default_factory=dict)
    essential: Set[Tuple[str, str]] = field(default_factory=set)

    @property
    def num_essential(self) -> int:
        return len(self.essential)

    def sequence(self, a: str, b: str) -> List[str]:
        key = (a, b) if a <= b else (b, a)
        return self.status[key]


@dataclass
class PressureSharingResult:
    """Valve groups able to share one pressure source each (§3.5)."""

    groups: List[List[Tuple[str, str]]]
    method: str  # "ilp" or "greedy"
    #: True when the ILP was requested but timed out (or crashed) and
    #: the greedy cover was substituted; the grouping is then valid but
    #: possibly not minimum.
    degraded: bool = False

    @property
    def num_control_inlets(self) -> int:
        return len(self.groups)

    def group_of(self, valve: Tuple[str, str]) -> int:
        for idx, group in enumerate(self.groups):
            if valve in group:
                return idx
        raise KeyError(f"valve {valve} not covered by any pressure group")


@dataclass
class SynthesisResult:
    """Everything the paper reports for one synthesized switch.

    Mirrors §2.3's output list: parallel-executable flow sets, routing
    paths, module-pin binding, used channels with total length, kept
    valves with pressure-sharing groups, and the program runtime.
    """

    spec: SwitchSpec
    status: SynthesisStatus
    runtime: float = 0.0
    objective: Optional[float] = None
    binding: Dict[str, str] = field(default_factory=dict)          # module -> pin
    flow_paths: Dict[int, Path] = field(default_factory=dict)      # flow id -> path
    flow_sets: List[List[int]] = field(default_factory=list)       # set -> flow ids
    used_segments: Set[Tuple[str, str]] = field(default_factory=set)
    valves: Optional[ValveAnalysis] = None
    pressure: Optional[PressureSharingResult] = None
    reduced: Optional[ReducedSwitch] = None
    solver: str = ""
    #: Wall-clock breakdown by pipeline phase (catalog / build /
    #: linearize / presolve / solve / extract / analyze / verify).
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    #: Search statistics from the solver backend (nodes, lp_calls,
    #: lp_iterations, cuts, incumbent_seeded, resolve_cache_hit, ...).
    counters: Dict[str, int] = field(default_factory=dict)
    #: Why the run failed or degraded: the captured exception text for
    #: ``status=ERROR`` results, or the original failure that the
    #: degradation ladder recovered from (``None`` on clean runs).
    error: Optional[str] = None

    # -- the metrics of Tables 4.1-4.3 -----------------------------------
    @property
    def flow_channel_length(self) -> float:
        """L — total used flow channel length, mm."""
        return sum(
            self.spec.switch.segments[key].length for key in self.used_segments
        )

    @property
    def num_flow_sets(self) -> int:
        """#s — number of parallel-executable flow sets."""
        return len(self.flow_sets)

    @property
    def num_valves(self) -> int:
        """#v — essential valves kept in the reduced switch."""
        return self.valves.num_essential if self.valves else 0

    @property
    def num_control_inlets(self) -> Optional[int]:
        return self.pressure.num_control_inlets if self.pressure else None

    def set_of_flow(self, fid: int) -> int:
        for idx, group in enumerate(self.flow_sets):
            if fid in group:
                return idx
        raise KeyError(f"flow {fid} is not scheduled")

    def pin_of(self, module: str) -> str:
        return self.binding[module]

    def table_row(self) -> Dict[str, object]:
        """One row in the style of the paper's result tables."""
        if not self.status.solved:
            return {
                "case": self.spec.name,
                "#m": len(self.spec.modules),
                "sw. size": self.spec.switch.size_label,
                "binding": self.spec.binding.value,
                "T(s)": round(self.runtime, 3),
                "result": self.status.value,
            }
        return {
            "case": self.spec.name,
            "#m": len(self.spec.modules),
            "sw. size": self.spec.switch.size_label,
            "binding": self.spec.binding.value,
            "T(s)": round(self.runtime, 3),
            "L(mm)": round(self.flow_channel_length, 2),
            "#v": self.num_valves,
            "#s": self.num_flow_sets,
        }

    def __repr__(self) -> str:
        if not self.status.solved:
            return f"SynthesisResult({self.spec.name!r}, {self.status.value})"
        return (
            f"SynthesisResult({self.spec.name!r}, {self.status.value}, "
            f"L={self.flow_channel_length:.1f}mm, #v={self.num_valves}, "
            f"#s={self.num_flow_sets}, T={self.runtime:.2f}s)"
        )

"""Pressure sharing by minimum clique cover (§3.5, eqs. 3.14–3.17).

Control inlets are expensive (≈1 mm² each versus 0.1 mm-wide channels),
so valves whose pressure schedules never disagree can share one inlet.
Two status sequences are *compatible* when no flow set has one valve
open and the other closed (X is compatible with everything). Pairwise
compatibility is transitive enough for groups: at any time step a
pairwise-compatible group contains no O together with a C, so the whole
group can follow one pressure sequence — a clique in the compatibility
graph is exactly a shareable group.

The minimum number of groups is a minimum clique cover, solved with the
paper's ILP (binary ``z[v,c]`` membership, ``clique_c`` occupancy
indicators and the pairwise exclusion (3.16)); a greedy baseline is
provided for comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.solution import PressureSharingResult
from repro.core.valves import CLOSED, OPEN
from repro.errors import ReproError, SolverError, SolveTimeoutError
from repro.obs.trace import obs_event
from repro.opt import Model, quicksum

Valve = Tuple[str, str]


def sequences_compatible(seq_a: Sequence[str], seq_b: Sequence[str]) -> bool:
    """Whether two O/C/X status sequences can share a pressure source."""
    if len(seq_a) != len(seq_b):
        raise ReproError("valve status sequences must cover the same flow sets")
    for sa, sb in zip(seq_a, seq_b):
        if {sa, sb} == {OPEN, CLOSED}:
            return False
    return True


def compatibility_graph(status: Dict[Valve, List[str]],
                        valves: Optional[Sequence[Valve]] = None) -> nx.Graph:
    """Graph with an edge between every pressure-compatible valve pair."""
    nodes = list(valves) if valves is not None else sorted(status)
    g = nx.Graph()
    g.add_nodes_from(nodes)
    for i, v1 in enumerate(nodes):
        for v2 in nodes[i + 1:]:
            if sequences_compatible(status[v1], status[v2]):
                g.add_edge(v1, v2)
    return g


def clique_cover_ilp(
    graph: nx.Graph,
    backend: str = "auto",
    time_limit: Optional[float] = None,
) -> List[List[Valve]]:
    """Minimum clique cover via the paper's ILP (3.14)–(3.17).

    ``Cliques`` starts with one candidate clique per valve; symmetry is
    broken by ordering occupied cliques first and restricting valve *i*
    to cliques 0..i.
    """
    valves = sorted(graph.nodes)
    if not valves:
        return []
    n = len(valves)
    model = Model("clique-cover")
    z: Dict[Tuple[int, int], object] = {}
    clique = [model.add_binary(f"clique_{c}") for c in range(n)]
    for vi in range(n):
        for c in range(vi + 1):  # symmetry: valve i only in cliques <= i
            z[(vi, c)] = model.add_binary(f"z_v{vi}_c{c}")
    # (3.14) every valve in exactly one clique
    for vi in range(n):
        model.add_constr(
            quicksum(z[(vi, c)] for c in range(vi + 1)) == 1, f"cover_v{vi}"
        )
    # (3.15) occupied-clique indicator
    for (vi, c), var in z.items():
        model.add_constr(clique[c] >= var, f"occ_v{vi}_c{c}")
    # (3.16) incompatible valves never share a clique
    for i in range(n):
        for j in range(i + 1, n):
            if graph.has_edge(valves[i], valves[j]):
                continue  # ps = 1: compatible, no restriction
            for c in range(i + 1):  # j can only join cliques <= j anyway
                model.add_constr(z[(i, c)] + z[(j, c)] <= 1, f"excl_{i}_{j}_c{c}")
    # symmetry: occupied cliques form a prefix
    for c in range(n - 1):
        model.add_constr(clique[c] >= clique[c + 1], f"cliq_ord_{c}")
    # (3.17) minimize the number of control inlets
    model.set_objective(quicksum(clique), "min")

    sol = model.solve(backend=backend, time_limit=time_limit)
    if not sol.has_solution:
        from repro.opt import SolveStatus

        if sol.status is SolveStatus.TIME_LIMIT:
            raise SolveTimeoutError(
                f"clique cover ILP hit its {time_limit}s budget with no incumbent"
            )
        raise ReproError(f"clique cover ILP failed: {sol.status.value}")
    groups: Dict[int, List[Valve]] = {}
    for (vi, c), var in z.items():
        if sol.value(var) > 0.5:
            groups.setdefault(c, []).append(valves[vi])
    return [sorted(groups[c]) for c in sorted(groups)]


def clique_cover_greedy(graph: nx.Graph) -> List[List[Valve]]:
    """First-fit clique cover (== greedy coloring of the complement).

    Linear-time baseline; never better than the ILP, used to quantify
    how much the exact formulation saves.
    """
    groups: List[List[Valve]] = []
    for v in sorted(graph.nodes):
        for group in groups:
            if all(graph.has_edge(v, member) for member in group):
                group.append(v)
                break
        else:
            groups.append([v])
    return [sorted(g) for g in groups]


def share_pressure(
    status: Dict[Valve, List[str]],
    valves: Optional[Sequence[Valve]] = None,
    method: str = "ilp",
    backend: str = "auto",
    time_limit: Optional[float] = None,
    on_timeout: str = "raise",
) -> PressureSharingResult:
    """Group valves into a minimum number of pressure-shareable sets.

    ``valves`` restricts the grouping (normally to the essential
    valves); ``method`` is ``"ilp"`` (exact, the paper's model) or
    ``"greedy"``.

    ``on_timeout`` governs what happens when the ILP exhausts
    ``time_limit`` (or its backend crashes): ``"raise"`` propagates the
    failure, ``"greedy"`` substitutes the first-fit cover — still a
    *valid* partition into compatible groups (``_check_cover`` runs
    either way), just possibly not minimum. The substitution is
    recorded as ``degraded=True`` on the result. A ``time_limit`` that
    is already ≤ 0 skips the ILP outright under ``"greedy"``.
    """
    if on_timeout not in ("raise", "greedy"):
        raise ReproError(f"unknown on_timeout policy {on_timeout!r}")
    graph = compatibility_graph(status, valves)
    degraded = False
    if method == "ilp":
        if on_timeout == "greedy" and time_limit is not None and time_limit <= 0:
            obs_event("degrade", where="pressure",
                      reason="no budget left for the clique-cover ILP")
            groups, method, degraded = clique_cover_greedy(graph), "greedy", True
        else:
            try:
                groups = clique_cover_ilp(graph, backend=backend,
                                          time_limit=time_limit)
            except (SolveTimeoutError, SolverError) as exc:
                if on_timeout != "greedy":
                    raise
                obs_event("degrade", where="pressure",
                          reason=f"{type(exc).__name__}: {exc}")
                groups, method, degraded = clique_cover_greedy(graph), "greedy", True
    elif method == "greedy":
        groups = clique_cover_greedy(graph)
    else:
        raise ReproError(f"unknown pressure sharing method {method!r}")
    _check_cover(graph, groups)
    return PressureSharingResult(groups=groups, method=method, degraded=degraded)


def _check_cover(graph: nx.Graph, groups: List[List[Valve]]) -> None:
    covered = [v for group in groups for v in group]
    if sorted(covered) != sorted(graph.nodes):
        raise ReproError("clique cover does not partition the valves")
    for group in groups:
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                if not graph.has_edge(a, b):
                    raise ReproError(f"valves {a} and {b} grouped but incompatible")

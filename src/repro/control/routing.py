"""Control-layer escape routing.

The paper leaves full control-channel routing to future work but relies
on three facts this module makes executable:

* every valve is reachable by at least one control channel;
* the *drawn* control channels of the prior GRU design violate the
  100 µm spacing rule (§2.1's fourth criticism);
* pressure sharing shrinks the number of control inlets, hence chip
  area (§3.5 motivation).

Two routing strategies are provided:

``"lanes"``
    Constructive Columba-S-style escape routing: each valve's control
    channel rises (or drops) vertically to the nearest horizontal
    border, with greedy lane assignment — adjacent channels get small
    lateral jogs so centerlines keep ``control width + spacing``
    clearance.

``"perpendicular"``
    As-drawn analysis: each control channel leaves the valve
    perpendicular to its flow segment, straight to the border. On the
    45° GRU geometry adjacent channels converge and cross — exactly the
    violation the paper points out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.geometry import Point
from repro.geometry.lines import segment_segment_distance
from repro.switches.base import SwitchModel, segment_key

SegKey = Tuple[str, str]

#: Extra clearance between the switch bounding box and the chip border.
BORDER_MARGIN = 0.5


@dataclass
class ControlChannel:
    """One routed control channel: valve tap → border inlet."""

    valve: SegKey
    points: List[Point]
    group: int = 0  # pressure-sharing group (one inlet per group)

    @property
    def length(self) -> float:
        return sum(a.manhattan_to(b) for a, b in zip(self.points, self.points[1:]))

    @property
    def inlet(self) -> Point:
        return self.points[-1]

    def polyline_segments(self) -> List[Tuple[Point, Point]]:
        return list(zip(self.points, self.points[1:]))


@dataclass
class ControlPlan:
    """A full control-layer plan plus its design-rule audit."""

    switch: SwitchModel
    channels: List[ControlChannel]
    strategy: str

    @property
    def total_length(self) -> float:
        return sum(c.length for c in self.channels)

    @property
    def num_inlets(self) -> int:
        """One control inlet per pressure group."""
        return len({c.group for c in self.channels}) if self.channels else 0

    def area(self) -> Dict[str, float]:
        rules = self.switch.rules
        channel = self.total_length * rules.control_channel_width
        inlets = rules.control_area(self.num_inlets)
        return {"channel": channel, "inlets": inlets, "total": channel + inlets}

    def violations(self) -> List[str]:
        """Spacing violations between channels of different groups.

        Channels sharing a pressure group are allowed to touch — they
        connect to the same inlet by construction.
        """
        rules = self.switch.rules
        min_clear = rules.control_channel_width + rules.min_channel_spacing
        found: List[str] = []
        for i, ca in enumerate(self.channels):
            for cb in self.channels[i + 1:]:
                if ca.group == cb.group:
                    continue
                dist = min(
                    segment_segment_distance(p1, p2, q1, q2)
                    for p1, p2 in ca.polyline_segments()
                    for q1, q2 in cb.polyline_segments()
                )
                if dist < min_clear - 1e-9:
                    found.append(
                        f"control channels of valves {ca.valve} and {cb.valve} "
                        f"are {dist * 1000:.0f} um apart "
                        f"(minimum {min_clear * 1000:.0f} um)"
                    )
        return found

    @property
    def is_clean(self) -> bool:
        return not self.violations()


def _valve_midpoint(switch: SwitchModel, key: SegKey) -> Point:
    a, b = key
    pa, pb = switch.coords[a], switch.coords[b]
    return Point((pa.x + pb.x) / 2, (pa.y + pb.y) / 2)


def route_control(
    switch: SwitchModel,
    valves: Sequence[SegKey],
    groups: Optional[Dict[SegKey, int]] = None,
    strategy: str = "lanes",
) -> ControlPlan:
    """Route one control channel per valve to the chip border.

    ``groups`` maps valves to pressure-sharing groups (defaults to one
    group per valve = no sharing).
    """
    keys = [segment_key(*v) for v in valves]
    for key in keys:
        if key not in switch.segments:
            raise ReproError(f"no segment {key} on {switch.name}")
    if groups is None:
        group_of = {key: idx for idx, key in enumerate(keys)}
    else:
        group_of = {segment_key(*k): g for k, g in groups.items()}
        missing = [k for k in keys if k not in group_of]
        if missing:
            raise ReproError(f"valves missing a pressure group: {missing}")

    if strategy == "lanes":
        channels = _route_lanes(switch, keys, group_of)
    elif strategy == "perpendicular":
        channels = _route_perpendicular(switch, keys, group_of)
    else:
        raise ReproError(f"unknown control routing strategy {strategy!r}")
    return ControlPlan(switch=switch, channels=channels, strategy=strategy)


# ----------------------------------------------------------------------
def _route_lanes(switch, keys, group_of) -> List[ControlChannel]:
    """Escape routing with a jog zone.

    Per border side (north/south), each channel runs: tap → (optional
    tap-level stub to a free start column) → vertical to its private
    *jog track* → horizontal to its *lane* → vertical to the border.

    Cleanliness argument: start columns are unique per side (same-x tap
    stacks get offset columns, processed outermost-first so stubs never
    cross an earlier vertical); lanes are pitch-separated and
    monotonically follow the column order; jog tracks sit in a zone
    beyond every tap and are ordered *inversely* to the columns, so a
    later channel's vertical (at a column right of an earlier lane
    start) never pierces an earlier, higher jog.
    """
    lo, hi = switch.bounding_box()
    pitch = switch.rules.control_channel_width + switch.rules.min_channel_spacing
    taps = {key: _valve_midpoint(switch, key) for key in keys}

    # Border assignment: a control channel leaves its valve
    # perpendicular to the flow segment (it must cross it), so valves on
    # vertical segments escape east/west and valves on horizontal
    # segments escape north/south; diagonal segments (GRU) go to the
    # nearest border. Within the preferred pair, pick the nearer side.
    sides = _assign_sides(switch, keys, taps, lo, hi, pitch)

    channels: List[ControlChannel] = []
    for side, side_keys in sides.items():
        if not side_keys:
            continue
        vertical_escape = side in ("N", "S")
        sign = 1.0 if side in ("N", "E") else -1.0
        extreme = (hi.y if side == "N" else lo.y) if vertical_escape else \
                  (hi.x if side == "E" else lo.x)

        def along(p: Point) -> float:
            """Coordinate across the escape direction (the lane axis)."""
            return p.x if vertical_escape else p.y

        def toward(p: Point) -> float:
            """Coordinate along the escape direction."""
            return p.y if vertical_escape else p.x

        def make_point(lane: float, escape: float) -> Point:
            return Point(lane, escape) if vertical_escape else Point(escape, lane)

        # unique start column per channel; same-column stacks resolved
        # outermost-tap-first so stubs never cross an earlier vertical
        used_cols: List[float] = []
        start_col: Dict[object, float] = {}
        for key in sorted(side_keys,
                          key=lambda k: (round(along(taps[k]), 9),
                                         -sign * toward(taps[k]))):
            col = along(taps[key])
            while any(abs(col - u) < pitch - 1e-12 for u in used_cols):
                col += pitch
            used_cols.append(col)
            start_col[key] = col

        ordered = sorted(side_keys,
                         key=lambda k: (start_col[k], -sign * toward(taps[k])))
        n = len(ordered)
        jog_base = extreme + sign * BORDER_MARGIN
        border = jog_base + sign * (n + 1) * pitch

        last_lane = -math.inf
        for rank, key in enumerate(ordered):
            tap = taps[key]
            col = start_col[key]
            lane = max(col, last_lane + pitch)
            last_lane = lane
            jog = jog_base + sign * (n - 1 - rank) * pitch
            points = [tap]
            if abs(col - along(tap)) > 1e-12:
                points.append(make_point(col, toward(tap)))  # tap-level stub
            points.append(make_point(col, jog))               # rise to jog track
            if abs(lane - col) > 1e-12:
                points.append(make_point(lane, jog))          # jog to the lane
            points.append(make_point(lane, border))           # escape
            channels.append(ControlChannel(key, points, group_of[key]))
    return channels


def _assign_sides(switch, keys, taps, lo, hi, pitch) -> Dict[str, List[SegKey]]:
    """Greedy conflict-aware border assignment.

    Each channel's in-switch portion is (approximately) a straight ray
    from its valve tap to one of the four borders. Taps are processed
    closest-to-border first; each takes the nearest border whose ray
    keeps ``pitch`` clearance from every ray placed so far, falling
    back to the least-conflicting border. Escape routing over a dense
    tap field can be genuinely infeasible on one layer — the plan's
    :meth:`ControlPlan.violations` audit reports whatever remains.
    """
    margin = BORDER_MARGIN

    def ray(tap: Point, side: str) -> Tuple[Point, Point]:
        if side == "N":
            return tap, Point(tap.x, hi.y + margin)
        if side == "S":
            return tap, Point(tap.x, lo.y - margin)
        if side == "E":
            return tap, Point(hi.x + margin, tap.y)
        return tap, Point(lo.x - margin, tap.y)

    def border_distance(tap: Point, side: str) -> float:
        return {"N": hi.y - tap.y, "S": tap.y - lo.y,
                "E": hi.x - tap.x, "W": tap.x - lo.x}[side]

    placed: List[Tuple[Point, Point]] = []
    sides: Dict[str, List[SegKey]] = {"N": [], "S": [], "E": [], "W": []}
    ordered = sorted(
        keys, key=lambda k: min(border_distance(taps[k], s) for s in "NSEW")
    )
    for key in ordered:
        tap = taps[key]
        options = sorted("NSEW", key=lambda s: border_distance(tap, s))
        chosen = None
        for side in options:
            a, b = ray(tap, side)
            clear = all(
                segment_segment_distance(a, b, p, q) >= pitch - 1e-9
                for p, q in placed
            )
            if clear:
                chosen = side
                break
        if chosen is None:
            chosen = options[0]
        placed.append(ray(tap, chosen))
        sides[chosen].append(key)
    return sides


def _route_perpendicular(switch, keys, group_of) -> List[ControlChannel]:
    lo, hi = switch.bounding_box()
    reach = max(hi.x - lo.x, hi.y - lo.y) + 2 * BORDER_MARGIN
    cx, cy = (lo.x + hi.x) / 2, (lo.y + hi.y) / 2

    channels: List[ControlChannel] = []
    for key in keys:
        a, b = key
        pa, pb = switch.coords[a], switch.coords[b]
        tap = _valve_midpoint(switch, key)
        dx, dy = pb.x - pa.x, pb.y - pa.y
        norm = math.hypot(dx, dy)
        perp = (-dy / norm, dx / norm)
        # escape away from the switch centre
        if perp[0] * (tap.x - cx) + perp[1] * (tap.y - cy) < 0:
            perp = (-perp[0], -perp[1])
        end = Point(tap.x + perp[0] * reach, tap.y + perp[1] * reach)
        channels.append(ControlChannel(key, [tap, end], group_of[key]))
    return channels

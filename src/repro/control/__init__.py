"""Control layer: escape routing, actuation programs, multiplexing."""

from repro.control.mux import MuxPlan, control_strategy_rows
from repro.control.program import (
    HIGH,
    LOW,
    ActuationProgram,
    ActuationStep,
    compile_program,
)
from repro.control.routing import (
    BORDER_MARGIN,
    ControlChannel,
    ControlPlan,
    route_control,
)

__all__ = [
    "route_control",
    "ControlPlan",
    "ControlChannel",
    "BORDER_MARGIN",
    "compile_program",
    "ActuationProgram",
    "ActuationStep",
    "HIGH",
    "LOW",
    "MuxPlan",
    "control_strategy_rows",
]

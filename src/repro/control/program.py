"""Pneumatic actuation programs.

A synthesized switch is operated by applying pressure vectors to its
control inlets, one vector per flow set. This module compiles a
:class:`~repro.core.solution.SynthesisResult` into that program:

* each pressure-sharing group becomes one control inlet;
* for every flow set, each inlet is driven HIGH (valve closed) or LOW
  (valve open) — *don't care* valves follow their group's requirement,
  defaulting LOW when the whole group is indifferent;
* a consistency check proves that driving each group with one line
  reproduces exactly the per-valve O/C schedule the synthesis demanded.

The compiled program is a plain data structure, exportable as JSON and
replayable in the execution simulator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.solution import PressureSharingResult, SynthesisResult
from repro.core.valves import CLOSED, DONT_CARE, OPEN
from repro.errors import ReproError

Valve = Tuple[str, str]

#: Pneumatic levels. HIGH pressurizes the control line, squeezing the
#: membrane and *closing* the valve; LOW vents it, opening the valve.
HIGH = "HIGH"
LOW = "LOW"


@dataclass
class ActuationStep:
    """One flow set's pressure vector, inlet index → level."""

    step: int
    levels: Dict[int, str]

    def level_of(self, inlet: int) -> str:
        return self.levels[inlet]


@dataclass
class ActuationProgram:
    """The full pneumatic program for one synthesized switch."""

    case_name: str
    inlets: List[List[Valve]]          # inlet index -> valves it drives
    steps: List[ActuationStep] = field(default_factory=list)

    @property
    def num_inlets(self) -> int:
        return len(self.inlets)

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def inlet_of(self, valve: Valve) -> int:
        for idx, group in enumerate(self.inlets):
            if valve in group:
                return idx
        raise KeyError(f"valve {valve} is not driven by any inlet")

    def valve_state(self, valve: Valve, step: int) -> str:
        """'O' or 'C' realized by the program for a valve at a step."""
        level = self.steps[step].levels[self.inlet_of(valve)]
        return CLOSED if level == HIGH else OPEN

    def transitions(self) -> int:
        """Total inlet level changes across the program — the control
        effort the paper's set-count objective is a proxy for."""
        count = 0
        for prev, cur in zip(self.steps, self.steps[1:]):
            count += sum(
                1 for inlet in cur.levels
                if cur.levels[inlet] != prev.levels[inlet]
            )
        return count

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "case": self.case_name,
            "inlets": [
                [f"{a}-{b}" for a, b in group] for group in self.inlets
            ],
            "steps": [
                {"step": s.step,
                 "levels": {str(i): lvl for i, lvl in sorted(s.levels.items())}}
                for s in self.steps
            ],
        }

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n",
                              encoding="utf-8")

    def pretty(self) -> str:
        lines = [f"actuation program for {self.case_name}: "
                 f"{self.num_inlets} control inlet(s), {self.num_steps} step(s)"]
        for idx, group in enumerate(self.inlets):
            names = ", ".join(f"{a}-{b}" for a, b in group)
            lines.append(f"  inlet {idx}: {names}")
        for step in self.steps:
            vec = " ".join(
                f"P{i}={step.levels[i]}" for i in sorted(step.levels)
            )
            lines.append(f"  set {step.step}: {vec}")
        return "\n".join(lines)


def compile_program(result: SynthesisResult) -> ActuationProgram:
    """Compile a solved synthesis result into its actuation program.

    Raises :class:`~repro.errors.ReproError` if any pressure group's
    members disagree (which the clique cover construction precludes —
    the check makes the compiled artifact self-validating).
    """
    if not result.status.solved:
        raise ReproError("cannot compile a program for an unsolved result")
    if result.valves is None:
        raise ReproError("synthesis result lacks a valve analysis")

    valves = sorted(result.valves.essential)
    if result.pressure is not None:
        inlets = [list(group) for group in result.pressure.groups]
    else:
        inlets = [[v] for v in valves]

    program = ActuationProgram(case_name=result.spec.name, inlets=inlets)
    n_steps = len(result.flow_sets)
    for step in range(n_steps):
        levels: Dict[int, str] = {}
        for idx, group in enumerate(inlets):
            demand: Optional[str] = None
            for valve in group:
                state = result.valves.status[valve][step]
                if state == DONT_CARE:
                    continue
                if demand is None:
                    demand = state
                elif demand != state:
                    raise ReproError(
                        f"pressure group {idx} is inconsistent at step {step}: "
                        f"{valve} wants {state}, group wants {demand}"
                    )
            levels[idx] = HIGH if demand == CLOSED else LOW
        program.steps.append(ActuationStep(step=step, levels=levels))

    _check_program(result, program)
    return program


def _check_program(result: SynthesisResult, program: ActuationProgram) -> None:
    """Every O/C demand of the schedule is realized by the program."""
    for valve in sorted(result.valves.essential):
        sequence = result.valves.status[valve]
        for step, state in enumerate(sequence):
            if state == DONT_CARE:
                continue
            realized = program.valve_state(valve, step)
            if realized != state:
                raise ReproError(
                    f"program drives valve {valve} to {realized} at step "
                    f"{step}, schedule demands {state}"
                )

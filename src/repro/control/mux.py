"""Microfluidic multiplexer control (the Columba S approach).

Columba S makes module models scalable by driving valves through a
binary multiplexer instead of one inlet per valve: a mux over ``n``
lines needs ``2*ceil(log2 n)`` address inputs (each address bit has a
pair of complementary control lines) plus one pressure source, at the
cost of *serial* actuation — valves are addressed one at a time and
latched.

This module models that trade-off so the control strategies can be
compared quantitatively on synthesized switches:

========================  ===========================  =================
strategy                  control inputs               actuations / set
========================  ===========================  =================
direct (1 inlet/valve)    ``n``                        1 (parallel)
pressure sharing (paper)  ``#cliques``                 1 (parallel)
multiplexer (Columba S)   ``2*ceil(log2 n) + 1``       changed valves
========================  ===========================  =================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.control.program import ActuationProgram, compile_program
from repro.core.solution import SynthesisResult
from repro.errors import ReproError

Valve = Tuple[str, str]


@dataclass(frozen=True)
class MuxPlan:
    """A binary multiplexer addressing ``num_lines`` latched valves."""

    num_lines: int

    def __post_init__(self) -> None:
        if self.num_lines < 1:
            raise ReproError("a multiplexer needs at least one line")

    @property
    def address_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.num_lines)))

    @property
    def num_control_inputs(self) -> int:
        """Two complementary lines per address bit plus the source."""
        return 2 * self.address_bits + 1

    def actuations_for(self, program: ActuationProgram) -> int:
        """Serial addressing operations needed to play a program.

        The first step sets every driven line; each later step re-
        addresses only the lines whose level changed.
        """
        if not program.steps:
            return 0
        total = len(program.steps[0].levels)
        total += program.transitions()
        return total


def control_strategy_rows(result: SynthesisResult) -> List[Dict[str, object]]:
    """Compare direct / pressure-shared / multiplexed control for one
    synthesized switch (inputs, chip area, actuation counts)."""
    if not result.status.solved or result.valves is None:
        raise ReproError("need a solved synthesis result")
    rules = result.spec.switch.rules
    n_valves = len(result.valves.essential)
    if n_valves == 0:
        return [{"strategy": "none needed", "control inputs": 0,
                 "inlet area (mm^2)": 0.0, "actuations": 0}]
    program = compile_program(result)
    n_steps = len(result.flow_sets)

    rows = [{
        "strategy": "direct (1 inlet/valve)",
        "control inputs": n_valves,
        "inlet area (mm^2)": rules.control_area(n_valves),
        "actuations": n_steps,
    }]
    if result.pressure is not None:
        rows.append({
            "strategy": "pressure sharing (paper)",
            "control inputs": result.pressure.num_control_inlets,
            "inlet area (mm^2)": rules.control_area(
                result.pressure.num_control_inlets),
            "actuations": n_steps,
        })
    mux = MuxPlan(program.num_inlets)
    rows.append({
        "strategy": "multiplexer (Columba S)",
        "control inputs": mux.num_control_inputs,
        "inlet area (mm^2)": rules.control_area(mux.num_control_inputs),
        "actuations": mux.actuations_for(program),
    })
    return rows

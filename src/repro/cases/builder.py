"""Fluent builder for switch cases.

Writing a :class:`~repro.core.spec.SwitchSpec` by hand means repeating
module lists and flow ids; the builder derives them::

    spec = (CaseBuilder("my assay", switch_size=8)
            .flow("sample", "mixer1")
            .flow("buffer", "mixer2")
            .conflict("sample", "buffer")     # by module or by flow id
            .clockwise("sample", "mixer1", "buffer", "mixer2")
            .build())

Flows get sequential ids; modules are registered on first mention;
conflicts may name two inlet modules (all their flow pairs conflict —
the fluid-level semantics) or two flow ids.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.spec import (
    BindingPolicy,
    ConflictForm,
    Flow,
    NodePolicy,
    SchedulingForm,
    SwitchSpec,
    conflict_pair,
)
from repro.errors import SpecError
from repro.switches import CrossbarSwitch, ScalableCrossbarSwitch, SwitchModel


class CaseBuilder:
    """Accumulates a switch case and validates it on :meth:`build`."""

    def __init__(self, name: str = "custom-case",
                 switch_size: int = 8,
                 switch: Optional[SwitchModel] = None,
                 scalable: bool = False) -> None:
        if switch is not None:
            self._switch = switch
        else:
            cls = ScalableCrossbarSwitch if scalable else CrossbarSwitch
            self._switch = cls(switch_size)
        self._name = name
        self._modules: List[str] = []
        self._flows: List[Flow] = []
        self._conflicts: Set[frozenset] = set()
        self._module_conflicts: List[Tuple[str, str]] = []
        self._binding = BindingPolicy.UNFIXED
        self._fixed: Optional[Dict[str, str]] = None
        self._order: Optional[List[str]] = None
        self._extra: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def module(self, name: str) -> "CaseBuilder":
        """Register a module explicitly (flows register theirs)."""
        if name not in self._modules:
            self._modules.append(name)
        return self

    def flow(self, source: str, target: str) -> "CaseBuilder":
        """Add a transport; modules are registered automatically."""
        self.module(source)
        self.module(target)
        self._flows.append(Flow(len(self._flows) + 1, source, target))
        return self

    def conflict(self, a: Union[str, int], b: Union[str, int]) -> "CaseBuilder":
        """Mark two flows (by id) or two inlets (by name) conflicting."""
        if isinstance(a, int) and isinstance(b, int):
            self._conflicts.add(conflict_pair(a, b))
        elif isinstance(a, str) and isinstance(b, str):
            self._module_conflicts.append((a, b))
        else:
            raise SpecError("conflict() takes two flow ids or two module names")
        return self

    def fixed(self, **module_to_pin: str) -> "CaseBuilder":
        """Use the fixed policy with the given module→pin map."""
        self._binding = BindingPolicy.FIXED
        self._fixed = dict(module_to_pin)
        return self

    def clockwise(self, *order: str) -> "CaseBuilder":
        """Use the clockwise policy with the given module order."""
        self._binding = BindingPolicy.CLOCKWISE
        self._order = list(order) if order else None
        return self

    def unfixed(self) -> "CaseBuilder":
        self._binding = BindingPolicy.UNFIXED
        return self

    def weights(self, alpha: float, beta: float) -> "CaseBuilder":
        self._extra["alpha"] = alpha
        self._extra["beta"] = beta
        return self

    def max_sets(self, n: int) -> "CaseBuilder":
        self._extra["max_sets"] = n
        return self

    def node_policy(self, policy: NodePolicy) -> "CaseBuilder":
        self._extra["node_policy"] = policy
        return self

    def scheduling_form(self, form: SchedulingForm) -> "CaseBuilder":
        self._extra["scheduling_form"] = form
        return self

    # ------------------------------------------------------------------
    def build(self) -> SwitchSpec:
        """Assemble and validate the spec."""
        conflicts = set(self._conflicts)
        for mod_a, mod_b in self._module_conflicts:
            pairs_a = [f.id for f in self._flows if f.source == mod_a]
            pairs_b = [f.id for f in self._flows if f.source == mod_b]
            if not pairs_a or not pairs_b:
                raise SpecError(
                    f"conflict between {mod_a!r} and {mod_b!r}: both must be "
                    "inlets of at least one flow"
                )
            for fa in pairs_a:
                for fb in pairs_b:
                    conflicts.add(conflict_pair(fa, fb))

        kwargs: Dict[str, object] = dict(
            switch=self._switch,
            modules=list(self._modules),
            flows=list(self._flows),
            conflicts=conflicts,
            binding=self._binding,
            name=self._name,
        )
        if self._binding is BindingPolicy.FIXED:
            kwargs["fixed_binding"] = self._fixed
        elif self._binding is BindingPolicy.CLOCKWISE:
            kwargs["module_order"] = self._order or list(self._modules)
        kwargs.update(self._extra)
        return SwitchSpec(**kwargs)

"""Nucleic-acid processor switch case (§4.1, second test case).

"The mixture from each mixer should be sent to a dedicated reaction
chamber. If any mixtures pollute each other, the single-cell experiment
is a failure." — three pairwise-conflicting flows M1→RC1, M2→RC2,
M3→RC3 on an 8-pin switch with 7 connected modules.

The fixed map and the clockwise order *interleave* mixers and chambers
around the switch: any two of the (vertex-disjoint-required) flows then
have interleaved endpoints on the outer face of the planar switch graph
and must share a node — so both restricted policies are provably
infeasible, exactly the "no solution" entries of Table 4.1, while the
unfixed policy re-orders the modules and solves.
"""

from __future__ import annotations

from repro.core.spec import BindingPolicy, Flow, SwitchSpec, conflict_pair
from repro.switches import CrossbarSwitch, ScalableCrossbarSwitch

NUCLEIC_FIXED = {
    "M1": "T1", "M2": "T2", "M3": "R1",
    "RC1": "R2", "RC2": "B2", "RC3": "B1",
    "waste": "L2",
}

NUCLEIC_ORDER = ["M1", "M2", "M3", "RC1", "RC2", "RC3", "waste"]


def nucleic_acid(binding: BindingPolicy = BindingPolicy.UNFIXED,
                 scalable: bool = False, **overrides) -> SwitchSpec:
    """Nucleic-acid processor: 7 modules, 8-pin, all flows conflicting."""
    switch = (ScalableCrossbarSwitch if scalable else CrossbarSwitch)(8)
    flows = [
        Flow(1, "M1", "RC1"),
        Flow(2, "M2", "RC2"),
        Flow(3, "M3", "RC3"),
    ]
    conflicts = {conflict_pair(1, 2), conflict_pair(1, 3), conflict_pair(2, 3)}
    kwargs = dict(
        switch=switch,
        modules=list(NUCLEIC_ORDER),
        flows=flows,
        conflicts=conflicts,
        binding=binding,
        name="nucleic acid processor" + (" (scalable)" if scalable else ""),
    )
    if binding is BindingPolicy.FIXED:
        kwargs["fixed_binding"] = dict(NUCLEIC_FIXED)
    elif binding is BindingPolicy.CLOCKWISE:
        kwargs["module_order"] = list(NUCLEIC_ORDER)
    kwargs.update(overrides)
    return SwitchSpec(**kwargs)

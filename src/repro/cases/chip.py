"""Chromatin immunoprecipitation (ChIP) switch cases.

Reconstructed from §4.1/§4.3: the first ChIP switch connects 9 modules
on a 12-pin switch, with conflicts between the flows from inlets
``i_10`` and ``i_11`` — the flow from ``i_10`` feeds mixer ``M1`` while
``i_11`` distributes to mixers ``M2``–``M4``. The second ChIP switch
connects 10 modules with no conflicting flows (Table 4.3).

The original Columba input files are not available offline; these specs
encode exactly the structural facts the paper states (module counts,
switch sizes, conflict pattern), as documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Optional

from repro.core.spec import BindingPolicy, Flow, SwitchSpec, conflict_pair
from repro.switches import CrossbarSwitch, ScalableCrossbarSwitch

#: Fixed binding used by the paper-style "fixed" policy runs. The map is
#: intentionally *not* length-optimal (i_10's flow crosses the top row)
#: so that, as in Table 4.1, the fixed policy trades channel length for
#: its much smaller runtime.
CHIP_SW1_FIXED = {
    "i_10": "T1", "M1": "T4",
    "i_11": "B1", "M2": "B2", "M3": "B3", "M4": "B4",
    "i_3": "L1", "o_7": "L2", "o_8": "R1",
}

#: Clockwise module order for the "clockwise" policy runs.
CHIP_SW1_ORDER = ["i_10", "M1", "i_11", "M2", "M3", "M4", "i_3", "o_7", "o_8"]


def chip_sw1(binding: BindingPolicy = BindingPolicy.UNFIXED,
             scalable: bool = False, **overrides) -> SwitchSpec:
    """ChIP switch 1: 9 modules, 12-pin, conflicting inlets i_10/i_11."""
    switch = (ScalableCrossbarSwitch if scalable else CrossbarSwitch)(12)
    flows = [
        Flow(1, "i_10", "M1"),
        Flow(2, "i_11", "M2"),
        Flow(3, "i_11", "M3"),
        Flow(4, "i_11", "M4"),
        Flow(5, "i_3", "o_7"),
        Flow(6, "i_3", "o_8"),
    ]
    conflicts = {conflict_pair(1, 2), conflict_pair(1, 3), conflict_pair(1, 4)}
    kwargs = dict(
        switch=switch,
        modules=list(CHIP_SW1_ORDER),
        flows=flows,
        conflicts=conflicts,
        binding=binding,
        name="ChIP sw.1" + (" (scalable)" if scalable else ""),
    )
    if binding is BindingPolicy.FIXED:
        kwargs["fixed_binding"] = dict(CHIP_SW1_FIXED)
    elif binding is BindingPolicy.CLOCKWISE:
        kwargs["module_order"] = list(CHIP_SW1_ORDER)
    kwargs.update(overrides)
    return SwitchSpec(**kwargs)


CHIP_SW2_FIXED = {
    "i_1": "T1", "o_1": "T2", "o_2": "T3", "o_3": "T4", "o_4": "R1",
    "i_2": "B1", "o_5": "B2", "o_6": "B3", "o_7": "B4", "o_8": "R2",
}

CHIP_SW2_ORDER = ["i_1", "o_1", "o_2", "o_3", "o_4",
                  "i_2", "o_5", "o_6", "o_7", "o_8"]


def chip_sw2(binding: BindingPolicy = BindingPolicy.UNFIXED,
             scalable: bool = False, **overrides) -> SwitchSpec:
    """ChIP switch 2: 10 modules, 12-pin, two inlets, no conflicts."""
    switch = (ScalableCrossbarSwitch if scalable else CrossbarSwitch)(12)
    flows = [
        Flow(1, "i_1", "o_1"),
        Flow(2, "i_1", "o_2"),
        Flow(3, "i_1", "o_3"),
        Flow(4, "i_1", "o_4"),
        Flow(5, "i_2", "o_5"),
        Flow(6, "i_2", "o_6"),
        Flow(7, "i_2", "o_7"),
        Flow(8, "i_2", "o_8"),
    ]
    kwargs = dict(
        switch=switch,
        modules=list(CHIP_SW2_ORDER),
        flows=flows,
        conflicts=set(),
        binding=binding,
        name="ChIP sw.2" + (" (scalable)" if scalable else ""),
    )
    if binding is BindingPolicy.FIXED:
        kwargs["fixed_binding"] = dict(CHIP_SW2_FIXED)
    elif binding is BindingPolicy.CLOCKWISE:
        kwargs["module_order"] = list(CHIP_SW2_ORDER)
    kwargs.update(overrides)
    return SwitchSpec(**kwargs)

"""Reconstructed application cases and artificial case generation."""

from repro.cases.artificial import generate_case, suite_90
from repro.cases.builder import CaseBuilder
from repro.cases.chip import chip_sw1, chip_sw2
from repro.cases.example_case import EXAMPLE_FLOW_TABLE, example_4_2
from repro.cases.kinase import kinase_sw1, kinase_sw2
from repro.cases.mrna import mrna_isolation
from repro.cases.nucleic_acid import nucleic_acid

#: Registry of named application cases (factories taking a binding policy).
CASE_REGISTRY = {
    "chip_sw1": chip_sw1,
    "chip_sw2": chip_sw2,
    "nucleic_acid": nucleic_acid,
    "mrna_isolation": mrna_isolation,
    "kinase_sw1": kinase_sw1,
    "kinase_sw2": kinase_sw2,
    "example_4_2": example_4_2,
}

__all__ = [
    "chip_sw1",
    "chip_sw2",
    "nucleic_acid",
    "mrna_isolation",
    "kinase_sw1",
    "kinase_sw2",
    "example_4_2",
    "EXAMPLE_FLOW_TABLE",
    "generate_case",
    "suite_90",
    "CaseBuilder",
    "CASE_REGISTRY",
]

"""Single-cell mRNA isolation switch case (§4.1, third test case).

Chambers RC1–RC4 each send fluid to a dedicated outlet p_c1–p_c4; the
four flows must stay apart. 10 modules on a 12-pin switch. As with the
nucleic-acid case, the fixed map and the clockwise order interleave the
chambers with their outlets, making the restricted policies infeasible
(Table 4.1's "no solution" rows) while the unfixed policy solves.
"""

from __future__ import annotations

from repro.core.spec import BindingPolicy, Flow, SwitchSpec, conflict_pair
from repro.switches import CrossbarSwitch, ScalableCrossbarSwitch

MRNA_FIXED = {
    "RC1": "T1", "RC2": "T2", "RC3": "T3", "RC4": "T4",
    "p_c1": "R1", "p_c2": "B4", "p_c3": "B3", "p_c4": "B2",
    "lysis": "B1", "waste": "L2",
}

MRNA_ORDER = ["RC1", "RC2", "RC3", "RC4",
              "p_c1", "p_c2", "p_c3", "p_c4", "lysis", "waste"]


def mrna_isolation(binding: BindingPolicy = BindingPolicy.UNFIXED,
                   scalable: bool = False, **overrides) -> SwitchSpec:
    """mRNA isolation: 10 modules, 12-pin, four conflicting flows."""
    switch = (ScalableCrossbarSwitch if scalable else CrossbarSwitch)(12)
    flows = [
        Flow(1, "RC1", "p_c1"),
        Flow(2, "RC2", "p_c2"),
        Flow(3, "RC3", "p_c3"),
        Flow(4, "RC4", "p_c4"),
        Flow(5, "lysis", "waste"),
    ]
    conflicts = {
        conflict_pair(a, b)
        for a in range(1, 5) for b in range(a + 1, 5)
    }
    kwargs = dict(
        switch=switch,
        modules=list(MRNA_ORDER),
        flows=flows,
        conflicts=conflicts,
        binding=binding,
        name="mRNA isolation" + (" (scalable)" if scalable else ""),
    )
    if binding is BindingPolicy.FIXED:
        kwargs["fixed_binding"] = dict(MRNA_FIXED)
    elif binding is BindingPolicy.CLOCKWISE:
        kwargs["module_order"] = list(MRNA_ORDER)
    kwargs.update(overrides)
    return SwitchSpec(**kwargs)

"""Kinase-activity radioassay switch cases (Table 4.3).

Two conflict-free switches from the kinase activity platform: sw.1
connects 4 modules (two independent transports) and sw.2 connects 6
modules (two inlets fanning out to two outlets each), both on 12-pin
switches. The fixed maps are chosen length-optimal, so — as in Table
4.3 — all three policies reach the same channel length while the fixed
policy is by far the fastest.
"""

from __future__ import annotations

from repro.core.spec import BindingPolicy, Flow, SwitchSpec

from repro.switches import CrossbarSwitch, ScalableCrossbarSwitch

KINASE_SW1_FIXED = {"i_1": "T1", "o_1": "L1", "i_2": "R1", "o_2": "T4"}
KINASE_SW1_ORDER = ["i_1", "o_1", "i_2", "o_2"]


def kinase_sw1(binding: BindingPolicy = BindingPolicy.UNFIXED,
               scalable: bool = False, **overrides) -> SwitchSpec:
    """Kinase activity sw.1: 4 modules, 12-pin, two independent flows."""
    switch = (ScalableCrossbarSwitch if scalable else CrossbarSwitch)(12)
    flows = [Flow(1, "i_1", "o_1"), Flow(2, "i_2", "o_2")]
    kwargs = dict(
        switch=switch,
        modules=list(KINASE_SW1_ORDER),
        flows=flows,
        conflicts=set(),
        binding=binding,
        name="kinase activity sw.1" + (" (scalable)" if scalable else ""),
    )
    if binding is BindingPolicy.FIXED:
        kwargs["fixed_binding"] = dict(KINASE_SW1_FIXED)
    elif binding is BindingPolicy.CLOCKWISE:
        kwargs["module_order"] = list(KINASE_SW1_ORDER)
    kwargs.update(overrides)
    return SwitchSpec(**kwargs)


KINASE_SW2_FIXED = {
    "i_1": "T1", "o_1": "L1", "o_2": "T2",
    "i_2": "B1", "o_3": "L2", "o_4": "B2",
}
KINASE_SW2_ORDER = ["i_1", "o_1", "o_2", "i_2", "o_3", "o_4"]


def kinase_sw2(binding: BindingPolicy = BindingPolicy.UNFIXED,
               scalable: bool = False, **overrides) -> SwitchSpec:
    """Kinase activity sw.2: 6 modules, 12-pin, two 1→2 fan-outs."""
    switch = (ScalableCrossbarSwitch if scalable else CrossbarSwitch)(12)
    flows = [
        Flow(1, "i_1", "o_1"),
        Flow(2, "i_1", "o_2"),
        Flow(3, "i_2", "o_3"),
        Flow(4, "i_2", "o_4"),
    ]
    kwargs = dict(
        switch=switch,
        modules=list(KINASE_SW2_ORDER),
        flows=flows,
        conflicts=set(),
        binding=binding,
        name="kinase activity sw.2" + (" (scalable)" if scalable else ""),
    )
    if binding is BindingPolicy.FIXED:
        kwargs["fixed_binding"] = dict(KINASE_SW2_FIXED)
    elif binding is BindingPolicy.CLOCKWISE:
        kwargs["module_order"] = list(KINASE_SW2_ORDER)
    kwargs.update(overrides)
    return SwitchSpec(**kwargs)

"""Artificial switch-input generator (the 90-case suite of §4.2).

The paper evaluates flow scheduling on 90 generated cases varying the
switch size, number of flows, number of connected modules, number of
conflicting constraints and binding policy. :func:`generate_case`
produces one reproducible case from a seed; :func:`suite_90` spans the
same feature grid (2 sizes × 3 flow counts × 3 policies × 5 seeds,
with the conflict count derived from the seed).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.spec import BindingPolicy, Flow, SwitchSpec, conflict_pair
from repro.errors import SpecError
from repro.switches import CrossbarSwitch


def generate_case(
    seed: int,
    switch_size: int = 8,
    n_flows: int = 3,
    n_inlets: int = 2,
    n_conflicts: int = 0,
    binding: BindingPolicy = BindingPolicy.UNFIXED,
    **overrides,
) -> SwitchSpec:
    """One random-but-reproducible switch case.

    Each flow gets a random inlet (all inlets used at least once when
    possible) and its own dedicated outlet; conflicts are sampled among
    flow pairs with different inlets. Module count is
    ``n_inlets + n_flows`` and must fit the switch.
    """
    rng = random.Random(seed)
    n_modules = n_inlets + n_flows
    switch = CrossbarSwitch(switch_size)
    if n_modules > switch.n_pins:
        raise SpecError(
            f"case needs {n_modules} modules but the {switch_size}-pin switch "
            f"has only {switch.n_pins} pins"
        )
    inlets = [f"in{i + 1}" for i in range(n_inlets)]
    outlets = [f"out{i + 1}" for i in range(n_flows)]

    # Round-robin base assignment guarantees every inlet is used, then
    # shuffle the surplus flows across inlets.
    sources = [inlets[i % n_inlets] for i in range(n_flows)]
    rng.shuffle(sources)
    flows = [Flow(i + 1, sources[i], outlets[i]) for i in range(n_flows)]

    candidates = [
        conflict_pair(a.id, b.id)
        for i, a in enumerate(flows)
        for b in flows[i + 1:]
        if a.source != b.source
    ]
    rng.shuffle(candidates)
    conflicts = set(candidates[:min(n_conflicts, len(candidates))])

    modules = inlets + outlets
    kwargs = dict(
        switch=switch,
        modules=modules,
        flows=flows,
        conflicts=conflicts,
        binding=binding,
        name=(
            f"artificial[s={seed},{switch_size}pin,f={n_flows},"
            f"i={n_inlets},c={len(conflicts)},{binding.value}]"
        ),
    )
    if binding is BindingPolicy.FIXED:
        pins = list(switch.pins)
        rng.shuffle(pins)
        kwargs["fixed_binding"] = {m: pins[i] for i, m in enumerate(modules)}
    elif binding is BindingPolicy.CLOCKWISE:
        order = list(modules)
        rng.shuffle(order)
        kwargs["module_order"] = order
    kwargs.update(overrides)
    return SwitchSpec(**kwargs)


def suite_90(**overrides) -> List[SwitchSpec]:
    """The 90-case grid of §4.2 (2 × 3 × 3 × 5)."""
    specs: List[SwitchSpec] = []
    for switch_size in (8, 12):
        for n_flows in (3, 4, 5):
            for binding in (BindingPolicy.FIXED, BindingPolicy.CLOCKWISE,
                            BindingPolicy.UNFIXED):
                for seed in range(5):
                    specs.append(generate_case(
                        seed=seed * 1000 + switch_size * 10 + n_flows,
                        switch_size=switch_size,
                        n_flows=n_flows,
                        n_inlets=2 if n_flows < 5 else 3,
                        n_conflicts=seed % 3,
                        binding=binding,
                        **overrides,
                    ))
    assert len(specs) == 90
    return specs

"""The flow-scheduling example of Table 4.2 / Figure 4.4.

12 connected modules on a 12-pin switch, clockwise binding with the
order 1,…,12, no conflicts, and nine flows::

    1 -> (7, 10, 11),   2 -> (5, 8, 9),   3 -> (4, 6, 12)

The paper schedules these into 3 flow sets (one per inlet).
"""

from __future__ import annotations

from typing import Optional

from repro.core.spec import BindingPolicy, Flow, SwitchSpec

from repro.switches import CrossbarSwitch

#: (source, target) pairs exactly as printed in Table 4.2.
EXAMPLE_FLOW_TABLE = [
    ("m1", "m7"), ("m1", "m10"), ("m1", "m11"),
    ("m2", "m5"), ("m2", "m8"), ("m2", "m9"),
    ("m3", "m4"), ("m3", "m6"), ("m3", "m12"),
]

EXAMPLE_ORDER = [f"m{i}" for i in range(1, 13)]


def example_4_2(binding: BindingPolicy = BindingPolicy.CLOCKWISE,
                max_sets: Optional[int] = 4, **overrides) -> SwitchSpec:
    """The Table 4.2 example case.

    ``max_sets`` defaults to 4 (the paper's answer is 3 sets; one spare
    keeps the bound non-binding while keeping the model tractable).
    Pass ``max_sets=None`` for the unbounded model.
    """
    flows = [Flow(i + 1, src, dst) for i, (src, dst) in enumerate(EXAMPLE_FLOW_TABLE)]
    kwargs = dict(
        switch=CrossbarSwitch(12),
        modules=list(EXAMPLE_ORDER),
        flows=flows,
        conflicts=set(),
        binding=binding,
        max_sets=max_sets,
        name="example 4.2",
    )
    if binding is BindingPolicy.CLOCKWISE:
        kwargs["module_order"] = list(EXAMPLE_ORDER)
    elif binding is BindingPolicy.FIXED:
        pins = CrossbarSwitch(12).pins
        kwargs["fixed_binding"] = {m: pins[i] for i, m in enumerate(EXAMPLE_ORDER)}
    kwargs.update(overrides)
    return SwitchSpec(**kwargs)

"""The persistent, content-addressed solve cache.

A :class:`Store` is a directory of immutable JSON entries (plus
optional binary sidecars), addressed by the sha256 keys of
:mod:`repro.store.keys` and sharded git-style::

    <root>/objects/ab/cdef0123....json    # envelope + payload
    <root>/objects/ab/cdef0123....bin     # optional blob sidecar
    <root>/locks/ab.lock                  # per-shard writer lock

Design rules:

* **Writers are exclusive, readers are lock-free.** Every write goes
  through :func:`repro.io.atomic.atomic_write` under an ``fcntl`` lock
  on the key's shard, so two processes racing on one key converge to a
  single valid entry (first writer wins; the loser observes the entry
  and skips). Readers never block: an atomic rename means they see
  either no entry or a complete one.
* **Hits are suspects.** :meth:`get` validates the envelope (schema,
  key, kind, salt, payload digest); anything torn, tampered or stale is
  treated as a *miss* and the damaged file is removed so the next
  write repairs it. Consumers re-verify decoded payloads on top (the
  Tier A path runs the independent feasibility checker before trusting
  a stored result).
* **Bounded by gc, not by writes.** Entries accumulate until
  :meth:`gc` evicts least-recently-used ones (hits bump mtime) down to
  a byte cap. With ``max_bytes`` set, a gc pass also runs
  opportunistically every :data:`GC_PUT_INTERVAL` puts.

Every hit/miss/put/evict is counted in the per-process ``counters``
dict and mirrored to the installed :mod:`repro.obs` tracer
(``store_*`` metrics, ``cache_hit``/``cache_miss`` events).

Stores pickle by configuration (root path + settings), so a store
handed to :func:`repro.experiments.batch.run_batch` crosses process
boundaries and every spawn worker shares the same on-disk cache.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

try:  # POSIX advisory locks; Windows falls back to lock-free writes
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.errors import ReproError
from repro.io.atomic import atomic_write
from repro.obs.trace import current_tracer, obs_event
from repro.store.keys import code_salt

#: Version tag stamped into every entry envelope. Bump on any
#: incompatible change to the envelope shape (payload compatibility is
#: governed separately by the key salt).
STORE_SCHEMA = "repro-store-v1"

#: With ``max_bytes`` set, a put triggers an opportunistic gc pass
#: every this many puts (per process) so long-running services stay
#: under the cap without an external cron.
GC_PUT_INTERVAL = 64

_COUNTER_NAMES = ("hits", "misses", "puts", "put_races", "evictions",
                  "corrupt", "verify_failed")


class StoreError(ReproError):
    """A store operation failed in a way the caller must see."""


def _payload_sha(payload: Any) -> str:
    import hashlib

    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class Store:
    """A sharded, content-addressed, LRU-gc'd on-disk cache."""

    def __init__(self, root: Union[str, Path],
                 max_bytes: Optional[int] = None,
                 seed_pseudocosts: bool = False,
                 instance: Optional[str] = None) -> None:
        self.root = Path(root)
        #: Metric namespace for this store's tracer counters. Defaults
        #: to the root directory's name so two stores in one process
        #: (a test fixture's cache next to a service's) never add into
        #: the same ``store_*`` registry instruments.
        self.instance = instance if instance is not None else self.root.name
        #: Byte cap enforced by :meth:`gc` (None = unbounded).
        self.max_bytes = max_bytes
        #: Whether ``parallel_bb`` may *seed* branching statistics from
        #: stored snapshots. Off by default: seeding never changes
        #: objectives or assignments, but it does change node counts
        #: between runs, which the parallel backend's strict
        #: node-determinism contract would otherwise forbid.
        self.seed_pseudocosts = seed_pseudocosts
        self.counters: Dict[str, int] = {name: 0 for name in _COUNTER_NAMES}
        self._puts_since_gc = 0

    # -- pickling (configuration only; counters are per-process) -------
    def __getstate__(self) -> Dict[str, Any]:
        return {"root": str(self.root), "max_bytes": self.max_bytes,
                "seed_pseudocosts": self.seed_pseudocosts,
                "instance": self.instance}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(state["root"], max_bytes=state["max_bytes"],
                      seed_pseudocosts=state["seed_pseudocosts"],
                      instance=state.get("instance"))

    def __repr__(self) -> str:
        return f"Store({str(self.root)!r}, max_bytes={self.max_bytes})"

    # -- layout --------------------------------------------------------
    def _object_path(self, key: str) -> Path:
        self._check_key(key)
        return self.root / "objects" / key[:2] / f"{key[2:]}.json"

    def _blob_path(self, key: str) -> Path:
        return self._object_path(key).with_suffix(".bin")

    @staticmethod
    def _check_key(key: str) -> None:
        if not (isinstance(key, str) and len(key) == 64
                and all(c in "0123456789abcdef" for c in key)):
            raise StoreError(f"malformed store key {key!r}")

    @contextlib.contextmanager
    def _shard_lock(self, key: str) -> Iterator[None]:
        """Exclusive writer lock for the key's shard (POSIX fcntl)."""
        lock_dir = self.root / "locks"
        lock_dir.mkdir(parents=True, exist_ok=True)
        lock_path = lock_dir / f"{key[:2]}.lock"
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with lock_path.open("a") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    # -- observability -------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        tracer = current_tracer()
        if tracer is not None:
            tracer.metrics.counter(f"store_{name}",
                                   instance=self.instance).inc(amount)

    # -- read path -----------------------------------------------------
    def get(self, key: str, kind: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or None.

        Any damage — unreadable JSON, a mismatched envelope, a payload
        that fails its own digest — counts as a miss; the broken file
        is removed so the next writer repairs the entry instead of
        racing a corpse.
        """
        path = self._object_path(key)
        entry = self._load_entry(path, key, kind)
        if entry is None:
            self._count("misses")
            obs_event("cache_miss", kind=kind, key=key[:16])
            return None
        self._count("hits")
        obs_event("cache_hit", kind=kind, key=key[:16])
        # LRU recency bump, lock-free. A concurrent gc may unlink the
        # file between our read and this utime — ENOENT is then fine
        # (the payload is already in hand; the next writer repopulates).
        with contextlib.suppress(OSError):
            os.utime(path)
        return entry["payload"]

    def _load_entry(self, path: Path, key: Optional[str],
                    kind: Optional[str]) -> Optional[Dict[str, Any]]:
        """Read + validate one entry; quarantine (delete) damage."""
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return None
        problem = None
        entry: Optional[Dict[str, Any]] = None
        try:
            entry = json.loads(raw)
        except ValueError:
            problem = "unparseable JSON"
        if entry is not None:
            problem = self._envelope_problem(entry, key, kind)
        if problem is not None:
            self._count("corrupt")
            obs_event("store_corrupt", key=path.stem[:16], problem=problem)
            with contextlib.suppress(OSError):
                path.unlink()
            with contextlib.suppress(OSError):
                path.with_suffix(".bin").unlink()
            return None
        return entry

    @staticmethod
    def _envelope_problem(entry: Any, key: Optional[str],
                          kind: Optional[str]) -> Optional[str]:
        if not isinstance(entry, dict):
            return "entry is not an object"
        if entry.get("schema") != STORE_SCHEMA:
            return f"schema {entry.get('schema')!r} != {STORE_SCHEMA!r}"
        if key is not None and entry.get("key") != key:
            return "key mismatch"
        if kind is not None and entry.get("kind") != kind:
            return f"kind {entry.get('kind')!r} != {kind!r}"
        if entry.get("salt") != code_salt():
            return "stale salt"
        if "payload" not in entry:
            return "payload missing"
        if entry.get("payload_sha") != _payload_sha(entry["payload"]):
            return "payload digest mismatch"
        return None

    def get_blob(self, key: str) -> Optional[bytes]:
        """The binary sidecar of ``key`` (None when absent)."""
        try:
            return self._blob_path(key).read_bytes()
        except OSError:
            return None

    def contains(self, key: str, kind: str) -> bool:
        """Validity check without counting a hit/miss or bumping LRU."""
        entry = self._load_entry(self._object_path(key), key, kind)
        return entry is not None

    # -- write path ----------------------------------------------------
    def put(self, key: str, kind: str, payload: Dict[str, Any],
            blob: Optional[bytes] = None) -> bool:
        """Store ``payload`` under ``key``; returns False on a lost race.

        Entries are immutable: if a valid entry already exists the
        write is skipped (content addressing makes both writers'
        payloads equivalent). An *invalid* existing entry is replaced.
        """
        path = self._object_path(key)
        entry = {
            "schema": STORE_SCHEMA,
            "key": key,
            "kind": kind,
            "salt": code_salt(),
            "created_unix": round(time.time(), 3),
            "payload_sha": _payload_sha(payload),
            "payload": payload,
        }
        with self._shard_lock(key):
            if self._load_entry(path, key, kind) is not None:
                self._count("put_races")
                return False
            if blob is not None:
                with atomic_write(self._blob_path(key), "wb") as fh:
                    fh.write(blob)
            with atomic_write(path) as fh:
                json.dump(entry, fh)
        self._count("puts")
        self._puts_since_gc += 1
        if self.max_bytes is not None \
                and self._puts_since_gc >= GC_PUT_INTERVAL:
            self._puts_since_gc = 0
            self.gc()
        return True

    def delete(self, key: str) -> bool:
        path = self._object_path(key)
        with self._shard_lock(key):
            existed = path.exists()
            with contextlib.suppress(OSError):
                path.unlink()
            with contextlib.suppress(OSError):
                self._blob_path(key).unlink()
        return existed

    # -- maintenance ---------------------------------------------------
    def _entries(self) -> List[Tuple[Path, float, int]]:
        """Every entry as ``(json path, mtime, bytes incl. sidecar)``."""
        objects = self.root / "objects"
        found: List[Tuple[Path, float, int]] = []
        if not objects.is_dir():
            return found
        for path in sorted(objects.glob("*/*.json")):
            try:
                stat = path.stat()
            except OSError:
                continue  # evicted or repaired concurrently
            size = stat.st_size
            blob = path.with_suffix(".bin")
            with contextlib.suppress(OSError):
                size += blob.stat().st_size
            found.append((path, stat.st_mtime, size))
        return found

    def gc(self, max_bytes: Optional[int] = None) -> Dict[str, int]:
        """Evict least-recently-used entries down to the byte cap.

        Returns ``{"evicted": n, "freed_bytes": b, "kept": k,
        "kept_bytes": b2}``. With no cap configured or given, nothing
        is evicted (the scan still reports sizes).
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        entries = self._entries()
        total = sum(size for _, _, size in entries)
        evicted = freed = 0
        if cap is not None:
            for path, scanned_mtime, size in sorted(
                    entries, key=lambda e: (e[1], e[0])):
                if total <= cap:
                    break
                key = f"{path.parent.name}{path.stem}"
                with self._shard_lock(key):
                    # Readers bump mtime lock-free, so the recency this
                    # scan saw may be stale by the time we get here.
                    # Re-stat under the shard lock: an entry hit since
                    # the scan is *recently used* and must survive; one
                    # already gone (concurrent gc/repair) frees its
                    # bytes without counting as our eviction.
                    try:
                        current_mtime = path.stat().st_mtime
                    except OSError:
                        total -= size
                        continue
                    if current_mtime > scanned_mtime:
                        continue
                    with contextlib.suppress(OSError):
                        path.unlink()
                    with contextlib.suppress(OSError):
                        path.with_suffix(".bin").unlink()
                total -= size
                freed += size
                evicted += 1
                obs_event("store_evict", key=key[:16], bytes=size)
        if evicted:
            self._count("evictions", evicted)
        return {"evicted": evicted, "freed_bytes": freed,
                "kept": len(entries) - evicted, "kept_bytes": total}

    def verify(self, repair: bool = True) -> Dict[str, Any]:
        """Validate every entry; optionally remove the damaged ones.

        Returns ``{"checked": n, "valid": v, "invalid": [...]}`` where
        each invalid item is ``{"key": ..., "problem": ...}``. With
        ``repair=True`` (default) damaged entries are deleted — the
        same quarantine a :meth:`get` would perform lazily.
        """
        checked = valid = 0
        invalid: List[Dict[str, str]] = []
        for path, _, _ in self._entries():
            checked += 1
            key = f"{path.parent.name}{path.stem}"
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                entry = None
            problem = ("unreadable entry" if entry is None
                       else self._envelope_problem(entry, key, None))
            if problem is None:
                valid += 1
                continue
            invalid.append({"key": key, "problem": problem})
            self._count("verify_failed")
            if repair:
                with self._shard_lock(key):
                    with contextlib.suppress(OSError):
                        path.unlink()
                    with contextlib.suppress(OSError):
                        path.with_suffix(".bin").unlink()
        return {"checked": checked, "valid": valid, "invalid": invalid}

    def stats(self) -> Dict[str, Any]:
        """Disk usage by kind plus this process's hit/miss counters."""
        entries = self._entries()
        kinds: Dict[str, int] = {}
        for path, _, _ in entries:
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                kind = str(entry.get("kind"))
            except (OSError, ValueError):
                kind = "corrupt"
            kinds[kind] = kinds.get(kind, 0) + 1
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(size for _, _, size in entries),
            "max_bytes": self.max_bytes,
            "by_kind": dict(sorted(kinds.items())),
            "salt": code_salt(),
            "counters": dict(self.counters),
        }


__all__ = ["Store", "StoreError", "STORE_SCHEMA", "GC_PUT_INTERVAL"]

"""Persistent content-addressed solve cache (``repro.store``).

The store is the cross-run, cross-process sibling of the in-memory
caches that already exist (the path-catalog LRU, compiled-model
caches, :class:`~repro.opt.incremental.SolveContext`): warm state that
used to die with the process now lives in a shared directory, so a
weight sweep, a batch campaign, a second tenant of the service or a
CI re-run can answer structurally identical work from disk.

Two tiers:

* **Tier A — exact result reuse.** Key = case fingerprint ⊕ config
  fingerprint ⊕ code-version salt. A hit returns the stored
  proven-optimal :class:`~repro.core.solution.SynthesisResult`,
  re-verified by the independent feasibility checker before it is
  trusted, without touching a solver.
* **Tier B — warm artifacts.** Structure-only keys store enumerated
  path catalogs, optimal incumbents and ``parallel_bb`` pseudo-cost
  snapshots, so near-miss instances (same structure, new weights or
  budget) start warm instead of cold.

Activation is explicit: pass a :class:`Store` via
``SynthesisOptions.store`` / ``run_batch(store=...)`` /
``SynthesisService(store=...)``, install one ambiently with
:func:`use_store` / :func:`set_active_store`, or export
``REPRO_STORE=/path/to/cache``. No store, no behaviour change.

See ``docs/caching.md`` for the layout, key derivation and the gc
runbook; ``repro cache stats|gc|verify`` manages a store from the
command line.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.store.codec import (
    decode_catalog,
    decode_incumbent,
    decode_result,
    encodable,
    encode_catalog,
    encode_incumbent,
    encode_result,
    load_result,
    store_result,
)
from repro.store.keys import (
    CACHE_EPOCH,
    artifact_key,
    code_salt,
    digest,
    fault_salt,
    result_key,
)
from repro.store.store import GC_PUT_INTERVAL, STORE_SCHEMA, Store, StoreError

_LOCK = threading.Lock()
_ACTIVE: Optional[Store] = None
_ENV_STORE: Optional[Store] = None


def active_store() -> Optional[Store]:
    """The ambient store, if any.

    An explicitly installed store (:func:`set_active_store` /
    :func:`use_store`) wins; otherwise ``REPRO_STORE`` in the
    environment names one (opened lazily, reused across calls).
    """
    global _ENV_STORE
    with _LOCK:
        if _ACTIVE is not None:
            return _ACTIVE
        path = os.environ.get("REPRO_STORE")
        if not path:
            return None
        if _ENV_STORE is None or str(_ENV_STORE.root) != path:
            _ENV_STORE = Store(path)
        return _ENV_STORE


def set_active_store(store: Optional[Store]) -> Optional[Store]:
    """Install (or with None, remove) the process-wide ambient store."""
    global _ACTIVE
    with _LOCK:
        previous = _ACTIVE
        _ACTIVE = store
    return previous


@contextmanager
def use_store(store: Optional[Store]) -> Iterator[Optional[Store]]:
    """Temporarily install ``store`` as the ambient store."""
    previous = set_active_store(store)
    try:
        yield store
    finally:
        set_active_store(previous)


__all__ = [
    "Store",
    "StoreError",
    "STORE_SCHEMA",
    "GC_PUT_INTERVAL",
    "CACHE_EPOCH",
    "code_salt",
    "digest",
    "fault_salt",
    "result_key",
    "artifact_key",
    "active_store",
    "set_active_store",
    "use_store",
    "encodable",
    "encode_result",
    "decode_result",
    "load_result",
    "store_result",
    "encode_catalog",
    "decode_catalog",
    "encode_incumbent",
    "decode_incumbent",
]

"""Key derivation for the persistent solve cache.

Every entry in the content-addressed store is identified by a sha256
hex digest computed here. Two rules keep the store trustworthy:

* **Content addressing** — a key is a pure function of the work it
  names: the case fingerprint, the config fingerprint, and (for warm
  artifacts) the structural identity of the model. Equal keys mean
  equal inputs, so a hit can be *re-verified* cheaply instead of
  trusted blindly.
* **Salting** — every key folds in :func:`code_salt`, a version salt
  derived from the library version plus a hand-bumped
  :data:`CACHE_EPOCH`. Changing either invalidates the whole store at
  zero cost (old entries simply stop being addressed; ``gc`` reclaims
  them). Bump :data:`CACHE_EPOCH` whenever a change alters what any
  cached payload *means* — a new objective term, a different path
  enumeration order, a changed result schema. ``REPRO_STORE_SALT``
  overrides the salt entirely (useful to segregate tenants or force a
  cold run without clearing the store).

Case and config fingerprints come from :mod:`repro.obs.manifest` — the
single canonical implementation; nothing in the store re-hashes specs
or options on its own.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any

from repro.obs.manifest import case_fingerprint, config_fingerprint

#: Bump to invalidate every existing store entry (see module docstring).
CACHE_EPOCH = 1

#: Entry kinds with a defined payload shape (open vocabulary, like
#: obs event names — producers may add more).
KNOWN_KINDS = (
    "result",       # Tier A: a complete verified SynthesisResult
    "catalog",      # Tier B: an enumerated path catalog
    "incumbent",    # Tier B: an optimal assignment (name -> value)
    "pseudocosts",  # Tier B: branching statistics arrays
)


def code_salt() -> str:
    """The version salt folded into every key."""
    override = os.environ.get("REPRO_STORE_SALT")
    if override:
        return override
    import repro  # deferred: repro.store is importable mid-package-init

    return f"epoch{CACHE_EPOCH}:{repro.__version__}"


def digest(*parts: Any) -> str:
    """sha256 hex over the canonical JSON of ``parts`` (salt included).

    Tuples/sets inside ``parts`` are canonicalized via ``default=str``
    fallbacks only after an explicit conversion — callers pass
    JSON-able shapes or hashables with stable ``repr``.
    """
    canonical = json.dumps([code_salt(), *[_canonical(p) for p in parts]],
                           sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _canonical(part: Any) -> Any:
    """A JSON-stable form of one key component."""
    if isinstance(part, (str, int, bool)) or part is None:
        return part
    if isinstance(part, float):
        return repr(part)  # repr is shortest-round-trip, stable in py3
    if isinstance(part, (list, tuple)):
        return [_canonical(p) for p in part]
    if isinstance(part, (set, frozenset)):
        return sorted(_canonical(p) for p in part)
    if isinstance(part, dict):
        return {str(k): _canonical(v) for k, v in sorted(part.items())}
    return repr(part)


def result_key(spec: Any, options: Any) -> str:
    """Tier A key: case ⊕ config fingerprint ⊕ fault mask ⊕ salt.

    The fault-mask component makes degraded hardware a different
    address: a cached healthy-chip result can never be served for a
    chip with masked valves/segments, and two different fault sets
    never share an entry. (The case fingerprint also sees the faults
    via the spec's switch serialization — the explicit component keeps
    the guarantee even for spec types that bypass it.)
    """
    return digest("result", case_fingerprint(spec),
                  config_fingerprint(options), fault_salt(spec))


def fault_salt(spec: Any) -> str:
    """Canonical digest of the spec's active fault mask."""
    mask = getattr(getattr(spec, "switch", None), "health", None)
    if mask is None or mask.is_empty:
        return "healthy"
    return mask.digest()


def artifact_key(kind: str, *parts: Any) -> str:
    """Tier B key for a structure-addressed warm artifact."""
    return digest(kind, *parts)


__all__ = ["CACHE_EPOCH", "KNOWN_KINDS", "code_salt", "digest",
           "fault_salt", "result_key", "artifact_key"]

"""Encoding/decoding of cached payloads (Tier A results, Tier B seeds).

The store holds plain JSON; this module is the boundary between that
JSON and the in-memory types. Two properties matter:

* **Self-contained encoding** — a stored result names routes by their
  vertex sequences (not catalog indices), valves by explicit node
  pairs (not joined strings), so decoding needs only the spec the
  caller already holds. Nothing positional, nothing ambiguous.
* **Zero-trust decoding** — :func:`decode_result` rebuilds paths on
  the *caller's* switch (a vertex sequence that is not a real channel
  fails immediately), recomputes the valve analysis and switch
  reduction from scratch, re-checks the stored pressure cover, and
  then :func:`load_result` runs the full independent verifier
  (:func:`repro.core.verify.verify_result`). A forged or stale entry
  can cost a failed validation; it can never produce a wrong answer.

Only **proven-optimal, non-degraded** results are encoded: feasible
and timed-out outcomes depend on the time budget of the run that
produced them, so replaying them for a different caller would change
answers.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.solution import (
    PressureSharingResult,
    SynthesisResult,
    SynthesisStatus,
    ValveAnalysis,
)
from repro.errors import ReproError, VerificationError
from repro.store.store import Store

#: Payload format version inside "result" entries; bump together with
#: :data:`repro.store.keys.CACHE_EPOCH` when the shape changes.
RESULT_FORMAT = 1


def encodable(result: SynthesisResult) -> bool:
    """Whether a result is safe to serve to *any* future caller."""
    return (result.status is SynthesisStatus.OPTIMAL
            and result.error is None
            and not result.counters.get("degraded"))


def encode_result(result: SynthesisResult) -> Dict[str, Any]:
    """The JSON payload for one proven-optimal synthesis result."""
    if not encodable(result):
        raise ReproError(
            f"only proven-optimal results are cacheable, not "
            f"{result.status.value!r}")
    payload: Dict[str, Any] = {
        "format": RESULT_FORMAT,
        "case": result.spec.name,
        "objective": result.objective,
        "solver": result.solver,
        "binding": dict(result.binding),
        "routes": [{"id": fid, "route": list(path.vertices)}
                   for fid, path in sorted(result.flow_paths.items())],
        "flow_sets": [list(group) for group in result.flow_sets],
    }
    if result.pressure is not None:
        payload["pressure"] = {
            "method": result.pressure.method,
            "degraded": bool(result.pressure.degraded),
            "groups": [sorted([a, b] for a, b in group)
                       for group in result.pressure.groups],
        }
    return payload


def decode_result(spec: Any, payload: Dict[str, Any]) -> SynthesisResult:
    """Rebuild a :class:`SynthesisResult` for ``spec`` from a payload.

    Raises :class:`VerificationError` (or a plain decoding error
    wrapped into one) on anything that does not reconstruct cleanly;
    callers treat that as a cache miss.
    """
    from repro.core.pressure import _check_cover, compatibility_graph
    from repro.core.valves import analyze_valves
    from repro.switches.paths import path_from_vertices
    from repro.switches.reduce import reduce_switch

    try:
        if payload.get("format") != RESULT_FORMAT:
            raise VerificationError(
                f"unknown result payload format {payload.get('format')!r}")
        flow_paths = {}
        for index, item in enumerate(payload["routes"]):
            flow_paths[item["id"]] = path_from_vertices(
                spec.switch, index, [str(v) for v in item["route"]])
        used: set = set()
        for path in flow_paths.values():
            used.update(path.segments)
        result = SynthesisResult(
            spec=spec,
            status=SynthesisStatus.OPTIMAL,
            objective=payload["objective"],
            binding={str(m): str(p)
                     for m, p in payload["binding"].items()},
            flow_paths=flow_paths,
            flow_sets=[[fid for fid in group]
                       for group in payload["flow_sets"]],
            used_segments=used,
            solver=str(payload.get("solver", "")),
        )
        valves = analyze_valves(spec.switch, result.flow_paths,
                                result.flow_sets)
        result.valves = valves
        result.reduced = reduce_switch(spec.switch, result.used_segments,
                                       valves.essential)
        pressure = payload.get("pressure")
        if pressure is not None:
            groups = [[(str(a), str(b)) for a, b in group]
                      for group in pressure["groups"]]
            graph = compatibility_graph(valves.status,
                                        sorted(valves.essential))
            _check_cover(graph, groups)  # raises on an invalid cover
            result.pressure = PressureSharingResult(
                groups=groups,
                method=str(pressure.get("method", "ilp")),
                degraded=bool(pressure.get("degraded", False)),
            )
        return result
    except VerificationError:
        raise
    except Exception as exc:  # malformed payload shapes, unknown channels
        raise VerificationError(
            f"stored result does not decode against spec "
            f"{getattr(spec, 'name', spec)!r}: "
            f"{type(exc).__name__}: {exc}") from exc


def load_result(store: Store, key: str, spec: Any) -> \
        Optional[SynthesisResult]:
    """Tier A read: fetch, decode and *independently verify* a result.

    Returns None on miss, on decode failure, and on verification
    failure — the caller falls through to a real solve either way. A
    hit that fails verification additionally deletes the entry and
    counts ``verify_failed`` (a content-addressed entry that fails the
    checker is damage, not a version skew — skew is excluded by the
    key salt).
    """
    from repro.core.verify import verify_result
    from repro.obs.trace import obs_event

    payload = store.get(key, "result")
    if payload is None:
        return None
    try:
        result = decode_result(spec, payload)
        verify_result(result)
    except VerificationError as exc:
        store._count("verify_failed")
        obs_event("store_verify_failed", key=key[:16], error=str(exc))
        store.delete(key)
        return None
    return result


def store_result(store: Store, key: str, result: SynthesisResult) -> bool:
    """Tier A write; silently skips non-cacheable results."""
    if not encodable(result):
        return False
    return store.put(key, "result", encode_result(result))


# -- Tier B payloads ---------------------------------------------------
def encode_catalog(paths) -> Dict[str, Any]:
    """Vertex sequences of an enumerated catalog, order-preserving."""
    return {"routes": [list(p.vertices) for p in paths]}


def decode_catalog(switch, payload: Dict[str, Any]):
    """Rebuild :class:`~repro.switches.paths.Path` objects on ``switch``."""
    from repro.switches.paths import path_from_vertices

    return tuple(
        path_from_vertices(switch, index, [str(v) for v in route])
        for index, route in enumerate(payload["routes"])
    )


def encode_incumbent(values_by_name: Dict[str, float],
                     objective: Optional[float] = None) -> Dict[str, Any]:
    return {"values": {str(k): float(v)
                       for k, v in values_by_name.items()},
            "objective": objective}


def decode_incumbent(payload: Dict[str, Any]) -> Dict[str, float]:
    return {str(k): float(v) for k, v in payload["values"].items()}


__all__ = [
    "RESULT_FORMAT", "encodable", "encode_result", "decode_result",
    "load_result", "store_result", "encode_catalog", "decode_catalog",
    "encode_incumbent", "decode_incumbent",
]

#!/usr/bin/env python3
"""Pressure sharing demo (§3.5 / Figure 3.2).

Control inlets cost ~1 mm² each, so valves whose open/closed schedules
never disagree should share one pressure source. This example:

1. reproduces the two literal examples of Figure 3.2 (one clique vs
   two cliques);
2. synthesizes a small switch whose schedule needs closed valves, then
   compares the exact clique-cover ILP against the greedy baseline.

Run:  python examples/pressure_sharing.py
"""

from repro import BindingPolicy, Flow, SwitchSpec, synthesize
from repro.core import SynthesisOptions, share_pressure
from repro.switches import CrossbarSwitch


def figure_3_2() -> None:
    print("Figure 3.2(a): sequences (O,X,C), (X,O,C), (O,O,C)")
    status_a = {
        ("v", "a"): ["O", "X", "C"],
        ("v", "b"): ["X", "O", "C"],
        ("v", "c"): ["O", "O", "C"],
    }
    res = share_pressure(status_a, method="ilp")
    print(f"  -> {res.num_control_inlets} control inlet(s): {res.groups}")

    print("Figure 3.2(b): a=(X,X), b=(O,C), c=(C,O)")
    status_b = {
        ("v", "a"): ["X", "X"],
        ("v", "b"): ["O", "C"],
        ("v", "c"): ["C", "O"],
    }
    res = share_pressure(status_b, method="ilp")
    print(f"  -> {res.num_control_inlets} control inlet(s): {res.groups}")


def synthesized_switch() -> None:
    # two inlets sharing the left corridor in different sets: the
    # schedule must close valves, making pressure sharing non-trivial
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["acid", "base", "w1", "w2", "w3"],
        flows=[
            Flow(1, "acid", "w1"),
            Flow(2, "base", "w2"),
            Flow(3, "acid", "w3"),
        ],
        binding=BindingPolicy.FIXED,
        fixed_binding={"acid": "T1", "w1": "B1", "base": "L1",
                       "w2": "B2", "w3": "L2"},
        name="pressure-demo",
    )
    result = synthesize(spec, SynthesisOptions(pressure_method="ilp"))
    print(f"\nsynthesized {spec.name}: {result.status.value}, "
          f"{result.num_flow_sets} flow sets")
    print("valve status sequences (O=open, C=closed, X=don't care):")
    for key, seq in sorted(result.valves.status.items()):
        marker = " essential" if key in result.valves.essential else ""
        print(f"  {key[0]}-{key[1]}: {''.join(seq)}{marker}")

    if result.valves.essential:
        ilp = share_pressure(result.valves.status,
                             valves=sorted(result.valves.essential), method="ilp")
        greedy = share_pressure(result.valves.status,
                                valves=sorted(result.valves.essential),
                                method="greedy")
        print(f"\ncontrol inlets: ILP clique cover = {ilp.num_control_inlets}, "
              f"greedy = {greedy.num_control_inlets}, "
              f"no sharing = {len(result.valves.essential)}")
        for idx, group in enumerate(ilp.groups):
            print(f"  pressure source {idx}: "
                  + ", ".join(f"{a}-{b}" for a, b in group))
    else:
        print("this routing needed no essential valves")


def main() -> None:
    figure_3_2()
    synthesized_switch()


if __name__ == "__main__":
    main()

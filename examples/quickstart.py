#!/usr/bin/env python3
"""Quickstart: synthesize a contamination-free 8-pin switch.

Two reagent streams must cross the same switch region without ever
touching the same channel. We declare the flows, mark them conflicting,
and let the synthesizer pick pins, routes, and the valve set.

Run:  python examples/quickstart.py
"""

from repro import BindingPolicy, Flow, SwitchSpec, conflict_pair, synthesize
from repro.render import render_result, save_svg
from repro.switches import CrossbarSwitch


def main() -> None:
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["sample", "buffer", "mixer1", "mixer2"],
        flows=[
            Flow(1, "sample", "mixer1"),
            Flow(2, "buffer", "mixer2"),
        ],
        # the sample and buffer streams must never share a channel
        conflicts={conflict_pair(1, 2)},
        binding=BindingPolicy.UNFIXED,
        name="quickstart",
    )

    result = synthesize(spec)
    print(f"status: {result.status.value}   (solver: {result.solver})")
    print(f"module -> pin binding: {result.binding}")
    for fid, path in sorted(result.flow_paths.items()):
        print(f"  flow {fid}: {path}  ({path.length:.1f} mm)")
    print(f"flow sets: {result.flow_sets}")
    print(f"channel length L = {result.flow_channel_length:.1f} mm")
    print(f"essential valves #v = {result.num_valves}")
    if result.pressure:
        print(f"control inlets after pressure sharing = "
              f"{result.pressure.num_control_inlets}")

    out = "examples/output/quickstart.svg"
    save_svg(render_result(result), out)
    print(f"layout written to {out}")


if __name__ == "__main__":
    main()

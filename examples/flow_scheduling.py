#!/usr/bin/env python3
"""Flow scheduling demo (§3.3 / Table 4.2 / Figure 4.4).

Nine flows from three inlets must cross one 12-pin switch. The
synthesizer groups them into parallel-executable *flow sets*: within a
set every channel site belongs to a single inlet, so no collision or
misrouting can occur; sets execute one after another.

By default a reduced 6-flow variant runs (seconds); pass ``--full`` for
the complete 9-flow case of Table 4.2 (minutes, as in the paper).

Run:  python examples/flow_scheduling.py [--full]
"""

import sys

from repro import BindingPolicy, Flow, SwitchSpec, SynthesisOptions, synthesize
from repro.cases import example_4_2
from repro.render import render_result, save_svg
from repro.switches import CrossbarSwitch


def reduced_variant() -> SwitchSpec:
    """Six of Table 4.2's nine flows — same structure, faster solve."""
    flows = [
        Flow(1, "m1", "m7"), Flow(2, "m1", "m10"),
        Flow(3, "m2", "m5"), Flow(4, "m2", "m8"),
        Flow(5, "m3", "m4"), Flow(6, "m3", "m12"),
    ]
    modules = [f"m{i}" for i in range(1, 13)]
    return SwitchSpec(
        switch=CrossbarSwitch(12),
        modules=modules,
        flows=flows,
        binding=BindingPolicy.CLOCKWISE,
        module_order=modules,
        max_sets=4,
        name="example 4.2 (reduced)",
    )


def main() -> None:
    full = "--full" in sys.argv
    spec = example_4_2() if full else reduced_variant()
    options = SynthesisOptions(time_limit=600 if full else 120)

    print(spec.summary())
    print("input flows:")
    for f in spec.flows:
        print(f"  {f}")

    result = synthesize(spec, options)
    print(f"\nstatus: {result.status.value}  T={result.runtime:.1f}s")
    if not result.status.solved:
        return

    print(f"scheduled into {result.num_flow_sets} flow set(s):")
    for idx, group in enumerate(result.flow_sets):
        names = ", ".join(str(result.flow_paths[f]) for f in group)
        print(f"  set {idx}: {names}")
    print(f"L = {result.flow_channel_length:.1f} mm, #v = {result.num_valves}")

    # execution order tuning: fewer valve transitions, shorter runtime
    from repro.core import count_valve_transitions, optimize_set_order
    from repro.render import render_valve_timeline
    from repro.sim import estimate_execution_time

    before = count_valve_transitions(result)
    optimized = optimize_set_order(result)
    after = count_valve_transitions(optimized)
    print(f"\nvalve transitions: {before} -> {after} after set reordering")
    print(f"estimated routing time: "
          f"{estimate_execution_time(optimized).summary()}")

    out = "examples/output/flow_scheduling.svg"
    save_svg(render_result(optimized), out)
    save_svg(render_valve_timeline(optimized),
             "examples/output/flow_scheduling_valves.svg")
    print(f"layout (Figure 4.4 style) saved to {out} "
          f"(+ valve timeline alongside)")


if __name__ == "__main__":
    main()

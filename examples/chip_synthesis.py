#!/usr/bin/env python3
"""ChIP application switch: the paper's first test case (§4.1).

Synthesizes the ChIP switch under all three binding policies, prints a
Table-4.1-style summary, and writes one SVG per solved policy plus the
scalable (Columba-S-compatible) variant — the content of Figures 4.1
and 4.3.

Run:  python examples/chip_synthesis.py [--quick]
  --quick   lower time limit (default 120 s per policy)
"""

import sys

from repro import BindingPolicy, SynthesisOptions, synthesize
from repro.analysis import format_table, result_rows
from repro.cases import chip_sw1
from repro.render import render_result, save_svg


def main() -> None:
    time_limit = 20 if "--quick" in sys.argv else 120
    options = SynthesisOptions(time_limit=time_limit)

    results = []
    for policy in (BindingPolicy.FIXED, BindingPolicy.CLOCKWISE,
                   BindingPolicy.UNFIXED):
        spec = chip_sw1(policy)
        print(f"synthesizing {spec.name} with {policy.value} binding "
              f"(limit {time_limit}s)...")
        result = synthesize(spec, options)
        results.append(result)
        if result.status.solved:
            out = f"examples/output/chip_{policy.value}.svg"
            save_svg(render_result(result), out)
            print(f"  -> {result.status.value}, L={result.flow_channel_length:.1f}mm, "
                  f"#s={result.num_flow_sets}, saved {out}")
        else:
            print(f"  -> {result.status.value}")

    print()
    print("Table 4.1-style summary for ChIP sw.1:")
    print(format_table(result_rows(results)))

    # the scalable variant (Figure 4.3) with the fastest policy
    spec = chip_sw1(BindingPolicy.FIXED, scalable=True)
    result = synthesize(spec, options)
    if result.status.solved:
        out = "examples/output/chip_scalable_fixed.svg"
        save_svg(render_result(result), out)
        print(f"\nscalable variant: L={result.flow_channel_length:.1f}mm, "
              f"saved {out}")


if __name__ == "__main__":
    main()

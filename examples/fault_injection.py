#!/usr/bin/env python3
"""Fault injection: why the *essential* valves are essential.

The synthesizer removes every valve that can stay open forever; the
rest must actuate. This example executes a synthesized switch in the
dynamic simulator, then breaks valves one at a time:

* a valve stuck OPEN lets fluid leak past a point the schedule wanted
  sealed — watch for misroutes / collisions / contamination;
* a valve stuck CLOSED starves the flows routed through it;
* faults on *removed* (unnecessary) valves change nothing, which is the
  paper's removal criterion made executable.

Run:  python examples/fault_injection.py
"""

from repro import BindingPolicy, Flow, SwitchSpec, synthesize
from repro.sim import EventKind, simulate, stuck_closed, stuck_open
from repro.switches import CrossbarSwitch


def main() -> None:
    # two inlets share the left corridor in different flow sets, so the
    # schedule depends on valves closing at the right time
    spec = SwitchSpec(
        switch=CrossbarSwitch(8),
        modules=["acid", "base", "w1", "w2"],
        flows=[Flow(1, "acid", "w1"), Flow(2, "base", "w2")],
        binding=BindingPolicy.FIXED,
        fixed_binding={"acid": "T1", "w1": "B1", "base": "L1", "w2": "B2"},
        name="fault-demo",
    )
    result = synthesize(spec)
    print(f"{spec.name}: {result.num_flow_sets} flow sets, "
          f"{result.num_valves} essential valves")

    report = simulate(result)
    print(f"fault-free execution: clean={report.is_clean} ({report.summary()})")

    print("\nstuck-OPEN faults on essential valves:")
    for key in sorted(result.valves.essential):
        faulty = simulate(result, faults=[stuck_open(*key)])
        issues = [e for e in faulty.events
                  if e.kind in (EventKind.MISROUTE, EventKind.COLLISION,
                                EventKind.CONTAMINATION)]
        verdict = "still clean" if faulty.is_clean else \
            f"{len(issues)} incident(s), e.g. {issues[0]}" if issues else \
            f"{len(faulty.undelivered)} flow(s) undelivered"
        print(f"  {key[0]}-{key[1]}: {verdict}")

    print("\nstuck-CLOSED fault on a routed segment:")
    seg = sorted(result.flow_paths[1].segments)[1]
    starved = simulate(result, faults=[stuck_closed(*seg)])
    print(f"  {seg[0]}-{seg[1]}: undelivered flows = {sorted(starved.undelivered)}")

    print("\nfaults on removed (unnecessary) valves:")
    removed = [k for k in result.used_segments
               if k not in result.valves.essential]
    for key in sorted(removed)[:3]:
        faulty = simulate(result, faults=[stuck_open(*key)])
        print(f"  {key[0]}-{key[1]} stuck open: clean={faulty.is_clean}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Chip co-layout and control strategies around one synthesized switch.

Shows what happens *around* the switch once it is synthesized:

1. the connected modules (mixers, chambers, I/O ports) are placed on a
   ring next to their bound pins and routed to them — the clockwise
   binding policy exists precisely so this step nests without crossings;
2. the essential valves get control channels escape-routed to the chip
   border, with a design-rule audit;
3. the valve schedule is compiled into a pneumatic actuation program,
   and the three control strategies (direct, pressure-shared,
   multiplexed à la Columba S) are compared.

Run:  python examples/chip_colayout.py
"""

from repro import BindingPolicy, SynthesisOptions, synthesize
from repro.analysis import format_table
from repro.cases import chip_sw1
from repro.chip import chip_layout
from repro.control import compile_program, control_strategy_rows, route_control
from repro.render import render_chip, save_svg


def main() -> None:
    spec = chip_sw1(BindingPolicy.FIXED)
    result = synthesize(spec, SynthesisOptions(time_limit=120))
    print(f"{spec.name}: {result.status.value}, "
          f"L={result.flow_channel_length:.1f} mm, "
          f"#v={result.num_valves}, #s={result.num_flow_sets}")

    # 1. module placement + pin routing
    layout = chip_layout(result)
    print(f"\nchip co-layout: {layout.summary()}")
    out = "examples/output/chip_colayout.svg"
    save_svg(render_chip(layout, result), out)
    print(f"layout rendered to {out}")

    # 2. control-channel escape routing
    valves = sorted(result.valves.essential)
    groups = None
    if result.pressure is not None:
        groups = {v: result.pressure.group_of(v) for v in valves}
    plan = route_control(spec.switch, valves, groups=groups, strategy="lanes")
    verdict = "clean" if plan.is_clean else f"{len(plan.violations())} violation(s)"
    print(f"\ncontrol escape routing: {len(plan.channels)} channels, "
          f"{plan.total_length:.1f} mm, {plan.num_inlets} inlet(s), DRC {verdict}")
    area = plan.area()
    print(f"control area: channels {area['channel']:.2f} mm^2 + "
          f"inlets {area['inlets']:.1f} mm^2")

    # 3. actuation program + strategy comparison
    program = compile_program(result)
    print(f"\n{program.pretty()}")
    print(f"inlet level transitions across the run: {program.transitions()}")

    print("\ncontrol strategy comparison:")
    print(format_table(control_strategy_rows(result)))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Proposed switch vs. Columba spine vs. GRU baseline (§2.1, §4.1).

Runs the nucleic-acid-processor case — three mixtures that must reach
their dedicated reaction chambers untouched — on three designs:

* the proposed crossbar, synthesized with the unfixed policy;
* a Columba-style spine (naive shortest-path routing);
* Ma's GRU switch (naive shortest-path routing).

The spine forces every flow through shared, valve-free segments; the
GRU lacks routing space around its border nodes. Both contaminate,
while the synthesized crossbar provably does not.

Run:  python examples/baseline_comparison.py
"""

from repro import BindingPolicy, SynthesisOptions
from repro.analysis import compare_designs, format_table, spine_pollution_profile
from repro.analysis.contamination import route_shortest
from repro.cases import nucleic_acid
from repro.render import render_result, render_switch, save_svg
from repro.switches import SpineSwitch


def main() -> None:
    spec = nucleic_acid(BindingPolicy.UNFIXED)
    print(spec.summary())

    comparison = compare_designs(spec, SynthesisOptions(time_limit=120))
    print()
    print(format_table(comparison.rows()))

    # show which spine segment is "the most polluted" (Figure 4.2c)
    spine = SpineSwitch(len(spec.modules))
    binding = {m: spine.pins[i] for i, m in enumerate(spec.modules)}
    paths = route_shortest(spine, binding, spec.flows)
    profile = spine_pollution_profile(spine, paths)
    worst_seg, worst_count = max(profile.items(), key=lambda kv: kv[1])
    print(f"\nmost polluted spine segment: {worst_seg[0]}-{worst_seg[1]} "
          f"(used by {worst_count} of {len(spec.flows)} flows)")

    if comparison.proposed and comparison.proposed.status.solved:
        out = "examples/output/nucleic_proposed.svg"
        save_svg(render_result(comparison.proposed), out)
        save_svg(render_switch(spine), "examples/output/nucleic_spine.svg")
        print(f"\nlayouts saved to {out} and examples/output/nucleic_spine.svg")


if __name__ == "__main__":
    main()
